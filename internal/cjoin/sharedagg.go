package cjoin

import (
	"fmt"

	"sharedq/internal/exec"
	"sharedq/internal/expr"
	"sharedq/internal/metrics"
	"sharedq/internal/pages"
	"sharedq/internal/plan"
)

// SharedAggregator is the shared aggregate operator the paper
// attributes to DataPath (§2.4: "a shared aggregate operator that
// calculates a running sum for each group and query") and discusses as
// an SP target (§3.1 "Shared aggregations"). It extends the GQP above
// the joins: tuples annotated with query bitmaps are aggregated once
// per (group, query) pair instead of once per query, so the grouping
// work — key extraction and hash lookups — is shared across all
// queries that group by the same columns.
//
// Queries may aggregate different expressions: each query contributes
// its own accumulator list per group; a tuple updates query q's
// accumulators only when its bitmap carries q's bit.
//
// The operator works on a fixed set of queries (like SharedDB's batched
// operators): all queries must be registered before feeding tuples.
type SharedAggregator struct {
	groupBy []int // ordinals into the joined row, shared by all queries
	queries []*aggQuery
	col     *metrics.Collector

	groups map[string]*sharedGroup
	order  []string
	keyBuf []byte
}

type aggQuery struct {
	bit  int
	plan *plan.Query
	pred expr.Pred           // fact predicate, evaluated on the joined tuple
	aggs []*expr.CompiledAgg // compiled once, shared by every group's accumulators
}

type sharedGroup struct {
	keyVals []pages.Value
	accs    [][]*expr.Acc // [query][agg]
}

// NewSharedAggregator creates the operator for the given shared
// group-by layout (ordinals into the joined-tuple schema).
func NewSharedAggregator(groupBy []int, col *metrics.Collector) *SharedAggregator {
	return &SharedAggregator{
		groupBy: groupBy,
		col:     col,
		groups:  make(map[string]*sharedGroup),
	}
}

// Register adds a query. Its plan must group by exactly the shared
// group-by columns (same ordinals, same order); its aggregates may
// differ freely from other queries'.
func (s *SharedAggregator) Register(bit int, q *plan.Query, factPred expr.Pred) error {
	if len(q.GroupBy) != len(s.groupBy) {
		return fmt.Errorf("cjoin: query groups by %d columns, operator by %d", len(q.GroupBy), len(s.groupBy))
	}
	for i, g := range q.GroupBy {
		if g != s.groupBy[i] {
			return fmt.Errorf("cjoin: group-by column %d differs (%d vs %d)", i, g, s.groupBy[i])
		}
	}
	if len(s.groups) > 0 {
		return fmt.Errorf("cjoin: cannot register after tuples were added (batched operator)")
	}
	aggs := make([]*expr.CompiledAgg, len(q.Aggs))
	for i := range q.Aggs {
		aggs[i] = expr.CompileAgg(q.Aggs[i])
	}
	s.queries = append(s.queries, &aggQuery{bit: bit, plan: q, pred: factPred, aggs: aggs})
	return nil
}

// NumQueries returns the number of registered queries.
func (s *SharedAggregator) NumQueries() int { return len(s.queries) }

// Add folds one annotated tuple batch: rows in the joined layout with
// parallel bitmaps. Group-key hashing happens once per tuple,
// independent of the number of queries — the sharing win.
func (s *SharedAggregator) Add(rows []pages.Row, bms []Bitmap) {
	stop := s.col.Timer(metrics.Aggregation)
	defer stop()
	for i, r := range rows {
		bm := bms[i]
		if bm == nil || !bm.Any() {
			continue
		}
		key := s.key(r)
		g, ok := s.groups[key]
		if !ok {
			g = &sharedGroup{accs: make([][]*expr.Acc, len(s.queries))}
			for qi, q := range s.queries {
				g.accs[qi] = make([]*expr.Acc, len(q.aggs))
				for ai, c := range q.aggs {
					g.accs[qi][ai] = c.NewAcc()
				}
			}
			g.keyVals = make([]pages.Value, len(s.groupBy))
			for ki, idx := range s.groupBy {
				g.keyVals[ki] = r[idx]
			}
			s.groups[key] = g
			s.order = append(s.order, key)
		}
		for qi, q := range s.queries {
			if !bm.Test(q.bit) {
				continue
			}
			if q.pred != nil && !q.pred(r) {
				continue
			}
			for _, acc := range g.accs[qi] {
				acc.Add(r)
			}
		}
	}
}

// key encodes the shared group-by values (same scheme as the
// query-centric aggregator).
func (s *SharedAggregator) key(r pages.Row) string {
	b := s.keyBuf[:0]
	for _, idx := range s.groupBy {
		v := r[idx]
		switch v.Kind {
		case pages.KindInt:
			u := uint64(v.I)
			b = append(b, 1, byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
				byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
		case pages.KindString:
			b = append(b, 2)
			b = append(b, v.S...)
			b = append(b, 0)
		default:
			u := uint64(int64(v.F * 100))
			b = append(b, 3, byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
				byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
		}
	}
	s.keyBuf = b
	return string(b)
}

// NumGroups returns the number of groups seen.
func (s *SharedAggregator) NumGroups() int { return len(s.groups) }

// Rows materializes query qi's output rows (its SELECT layout), sorted
// per its ORDER BY via exec.SortRows. Groups to which the query
// contributed no tuples are omitted, matching per-query semantics.
func (s *SharedAggregator) Rows(qi int) []pages.Row {
	q := s.queries[qi]
	out := make([]pages.Row, 0, len(s.order))
	for _, key := range s.order {
		g := s.groups[key]
		touched := false
		for _, acc := range g.accs[qi] {
			if acc.Count() > 0 {
				touched = true
				break
			}
		}
		if !touched {
			continue
		}
		row := make(pages.Row, len(q.plan.Output))
		for i, oc := range q.plan.Output {
			switch {
			case oc.AggIdx >= 0:
				row[i] = g.accs[qi][oc.AggIdx].Result()
			case oc.GroupIdx >= 0:
				row[i] = g.keyVals[oc.GroupIdx]
			}
		}
		out = append(out, row)
	}
	return exec.SortRows(q.plan, s.col, out)
}
