package cjoin

import (
	"fmt"

	"sharedq/internal/exec"
	"sharedq/internal/expr"
	"sharedq/internal/metrics"
	"sharedq/internal/pages"
	"sharedq/internal/plan"
	"sharedq/internal/vec"
)

// SharedAggregator is the shared aggregate operator the paper
// attributes to DataPath (§2.4: "a shared aggregate operator that
// calculates a running sum for each group and query") and discusses as
// an SP target (§3.1 "Shared aggregations"). It extends the GQP above
// the joins: tuples annotated with query bitmaps are aggregated once
// per (group, query) pair instead of once per query, so the grouping
// work — key extraction and hash lookups — is shared across all
// queries that group by the same columns.
//
// Queries may aggregate different expressions: each query contributes
// its own accumulator list per group; a tuple updates query q's
// accumulators only when its bitmap carries q's bit.
//
// Groups get dense ids in first-seen order and per-(query, aggregate)
// state lives in id-indexed registers (expr.GroupAccs), so the batch
// path folds annotated column batches with one group-id pass per batch
// and no allocation once every group has been seen — the same layout
// the query-centric exec.Aggregator uses on the vectorized path.
//
// The operator works on a fixed set of queries (like SharedDB's batched
// operators): all queries must be registered before feeding tuples.
type SharedAggregator struct {
	groupBy []int // ordinals into the joined row, shared by all queries
	queries []*aggQuery
	col     *metrics.Collector

	ids     map[string]int32 // encoded group key -> dense id
	keyVals [][]pages.Value  // id -> captured group-by values
	keyBuf  []byte

	// Reusable batch scratch: per-row group ids for the current batch,
	// and the per-query sub-selection with its parallel group ids.
	rowGid  []int32
	qselBuf []int
	qgidBuf []int32
}

type aggQuery struct {
	bit   int
	plan  *plan.Query
	pred  expr.Pred    // fact predicate, evaluated on the joined tuple
	vpred expr.VecPred // the same predicate as a selection-vector kernel

	aggs   []*expr.CompiledAgg // compiled once, shared by every group
	gaccs  []*expr.GroupAccs   // per-aggregate, group-id-indexed state
	counts []int64             // id -> tuples folded for this query
}

// NewSharedAggregator creates the operator for the given shared
// group-by layout (ordinals into the joined-tuple schema).
func NewSharedAggregator(groupBy []int, col *metrics.Collector) *SharedAggregator {
	return &SharedAggregator{
		groupBy: groupBy,
		col:     col,
		ids:     make(map[string]int32),
	}
}

// Register adds a query. Its plan must group by exactly the shared
// group-by columns (same ordinals, same order); its aggregates may
// differ freely from other queries'. factPred is the query's fact
// predicate over the joined tuple (nil = none, typically when the
// feeder pre-filtered facts); it is compiled once into both the
// row-at-a-time and the selection-vector form, so Add and AddBatch
// filter identically.
func (s *SharedAggregator) Register(bit int, q *plan.Query, factPred expr.Expr) error {
	if len(q.GroupBy) != len(s.groupBy) {
		return fmt.Errorf("cjoin: query groups by %d columns, operator by %d", len(q.GroupBy), len(s.groupBy))
	}
	for i, g := range q.GroupBy {
		if g != s.groupBy[i] {
			return fmt.Errorf("cjoin: group-by column %d differs (%d vs %d)", i, g, s.groupBy[i])
		}
	}
	if len(s.keyVals) > 0 {
		return fmt.Errorf("cjoin: cannot register after tuples were added (batched operator)")
	}
	aggs := make([]*expr.CompiledAgg, len(q.Aggs))
	gaccs := make([]*expr.GroupAccs, len(q.Aggs))
	for i := range q.Aggs {
		aggs[i] = expr.CompileAgg(q.Aggs[i])
		gaccs[i] = aggs[i].NewGroupAccs()
	}
	s.queries = append(s.queries, &aggQuery{
		bit:   bit,
		plan:  q,
		pred:  expr.CompilePred(factPred),
		vpred: expr.CompileVecPred(factPred),
		aggs:  aggs,
		gaccs: gaccs,
	})
	return nil
}

// NumQueries returns the number of registered queries.
func (s *SharedAggregator) NumQueries() int { return len(s.queries) }

// newGroupID assigns the next dense id, capturing the group-by values
// of row i of b (or of row r when b is nil) and growing every query's
// register files.
func (s *SharedAggregator) newGroupID(b *vec.Batch, i int, r pages.Row) int32 {
	id := int32(len(s.keyVals))
	vals := make([]pages.Value, len(s.groupBy))
	for j, idx := range s.groupBy {
		if b != nil {
			vals[j] = b.Value(idx, i)
		} else {
			vals[j] = r[idx]
		}
	}
	s.keyVals = append(s.keyVals, vals)
	n := len(s.keyVals)
	for _, q := range s.queries {
		for _, g := range q.gaccs {
			g.Grow(n)
		}
		for len(q.counts) < n {
			q.counts = append(q.counts, 0)
		}
	}
	return id
}

// Add folds one annotated tuple batch: rows in the joined layout with
// parallel bitmaps. Group-key hashing happens once per tuple,
// independent of the number of queries — the sharing win. This is the
// row-at-a-time path, kept for callers without column batches; AddBatch
// is the vectorized equivalent.
func (s *SharedAggregator) Add(rows []pages.Row, bms []Bitmap) {
	stop := s.col.Timer(metrics.Aggregation)
	defer stop()
	for i, r := range rows {
		bm := bms[i]
		if bm == nil || !bm.Any() {
			continue
		}
		key := s.keyRow(r)
		gid, ok := s.ids[string(key)]
		if !ok {
			gid = s.newGroupID(nil, 0, r)
			s.ids[string(key)] = gid
		}
		for _, q := range s.queries {
			if !bm.Test(q.bit) {
				continue
			}
			if q.pred != nil && !q.pred(r) {
				continue
			}
			q.counts[gid]++
			for _, g := range q.gaccs {
				g.AddRow(r, gid)
			}
		}
	}
}

// AddBatch folds the selected rows of an annotated column batch: the
// joined layout as typed column vectors, with bms[i] carrying row
// sel[i]'s query bitmap (nil rows are skipped). The group-id pass runs
// once over the selection; each query then folds its sub-selection
// through the columnar expr.GroupAccs kernels, with its fact predicate
// applied as a selection-vector kernel. Steady state (every group
// seen) performs no allocation — the scratch selections and group-id
// slices are all reused.
func (s *SharedAggregator) AddBatch(b *vec.Batch, sel []int, bms []Bitmap) {
	stop := s.col.Timer(metrics.Aggregation)
	defer stop()
	if len(sel) == 0 {
		return
	}

	// Pass 1 (shared): map each selected row to its dense group id.
	// rowGid is indexed by batch row so per-query sub-selections can
	// recover their rows' ids after predicate filtering.
	if cap(s.rowGid) < b.Len() {
		s.rowGid = make([]int32, b.Len())
	}
	rowGid := s.rowGid[:b.Len()]
	for j, i := range sel {
		if bms[j] == nil || !bms[j].Any() {
			rowGid[i] = -1
			continue
		}
		key := s.keyBatch(b, i)
		gid, ok := s.ids[string(key)]
		if !ok {
			gid = s.newGroupID(b, i, nil)
			s.ids[string(key)] = gid
		}
		rowGid[i] = gid
	}

	// Pass 2 (per query): select rows carrying the query's bit, filter
	// with its vectorized fact predicate, recover group ids, and run
	// the columnar accumulate kernels.
	for _, q := range s.queries {
		qsel := s.qselBuf[:0]
		for j, i := range sel {
			if bms[j] != nil && rowGid[i] >= 0 && bms[j].Test(q.bit) {
				qsel = append(qsel, i)
			}
		}
		s.qselBuf = qsel
		if q.vpred != nil && len(qsel) > 0 {
			qsel = q.vpred(b, qsel)
		}
		if len(qsel) == 0 {
			continue
		}
		qgid := s.qgidBuf
		if cap(qgid) < len(qsel) {
			qgid = make([]int32, len(qsel))
			s.qgidBuf = qgid
		}
		qgid = qgid[:len(qsel)]
		for j, i := range qsel {
			gid := rowGid[i]
			qgid[j] = gid
			q.counts[gid]++
		}
		for _, g := range q.gaccs {
			g.AddBatch(b, qsel, qgid)
		}
	}
}

// keyRow encodes the shared group-by values of a joined row through
// exec.AppendKeyValue, the canonical grouping encoding, so the shared
// and query-centric aggregators bucket groups identically.
func (s *SharedAggregator) keyRow(r pages.Row) []byte {
	b := s.keyBuf[:0]
	for _, idx := range s.groupBy {
		b = exec.AppendKeyValue(b, r[idx])
	}
	s.keyBuf = b
	return b
}

// keyBatch encodes row i's group-by values, byte-identical to keyRow
// (Value boxes a column cell on the stack; the encoding itself stays
// in one place).
func (s *SharedAggregator) keyBatch(bat *vec.Batch, i int) []byte {
	b := s.keyBuf[:0]
	for _, idx := range s.groupBy {
		b = exec.AppendKeyValue(b, bat.Value(idx, i))
	}
	s.keyBuf = b
	return b
}

// NumGroups returns the number of groups seen.
func (s *SharedAggregator) NumGroups() int { return len(s.keyVals) }

// Rows materializes query qi's output rows (its SELECT layout), sorted
// per its ORDER BY via exec.SortRows. Groups to which the query
// contributed no tuples are omitted, matching per-query semantics.
func (s *SharedAggregator) Rows(qi int) []pages.Row {
	q := s.queries[qi]
	out := make([]pages.Row, 0, len(s.keyVals))
	for gid := int32(0); gid < int32(len(s.keyVals)); gid++ {
		if q.counts[gid] == 0 {
			continue
		}
		row := make(pages.Row, len(q.plan.Output))
		for i, oc := range q.plan.Output {
			switch {
			case oc.AggIdx >= 0:
				row[i] = q.gaccs[oc.AggIdx].Result(gid)
			case oc.GroupIdx >= 0:
				row[i] = s.keyVals[gid][oc.GroupIdx]
			}
		}
		out = append(out, row)
	}
	return exec.SortRows(q.plan, s.col, out)
}
