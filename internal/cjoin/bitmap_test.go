package cjoin

import (
	"testing"
	"testing/quick"
)

func TestBitmapSetTestClear(t *testing.T) {
	var b Bitmap
	b = b.Set(3)
	b = b.Set(64)
	b = b.Set(200)
	for _, i := range []int{3, 64, 200} {
		if !b.Test(i) {
			t.Errorf("bit %d not set", i)
		}
	}
	if b.Test(4) || b.Test(65) || b.Test(199) || b.Test(1000) {
		t.Error("unexpected bits set")
	}
	b.Clear(64)
	if b.Test(64) {
		t.Error("bit 64 not cleared")
	}
	b.Clear(100000) // out of range: no-op, no panic
}

func TestBitmapAnyCount(t *testing.T) {
	var b Bitmap
	if b.Any() || b.Count() != 0 {
		t.Error("empty bitmap not empty")
	}
	b = b.Set(0)
	b = b.Set(63)
	b = b.Set(64)
	if !b.Any() || b.Count() != 3 {
		t.Errorf("Count = %d", b.Count())
	}
}

func TestBitmapClone(t *testing.T) {
	b := Bitmap{}.Set(5)
	c := b.Clone()
	c.Clear(5)
	if !b.Test(5) {
		t.Error("Clone aliases original")
	}
}

func TestNewBitmapWidth(t *testing.T) {
	if len(NewBitmap(0)) != 0 || len(NewBitmap(1)) != 1 || len(NewBitmap(64)) != 1 || len(NewBitmap(65)) != 2 {
		t.Error("NewBitmap width wrong")
	}
}

func TestFilterAndSemantics(t *testing.T) {
	// Query 0 references the dim and is selected; query 1 references and
	// is not selected; query 2 does not reference the dim.
	tuple := Bitmap{}.Set(0).Set(1).Set(2)
	sel := Bitmap{}.Set(0)
	ref := Bitmap{}.Set(0).Set(1)
	if !tuple.FilterAnd(sel, ref) {
		t.Fatal("tuple should survive")
	}
	if !tuple.Test(0) {
		t.Error("selected referencing query lost its bit")
	}
	if tuple.Test(1) {
		t.Error("unselected referencing query kept its bit")
	}
	if !tuple.Test(2) {
		t.Error("non-referencing query lost its bit")
	}
}

func TestFilterAndNoMatch(t *testing.T) {
	// No dimension row matched: sel is nil; only non-referencing
	// queries survive.
	tuple := Bitmap{}.Set(0).Set(1)
	ref := Bitmap{}.Set(0)
	if !tuple.FilterAnd(nil, ref) {
		t.Fatal("non-referencing query should survive")
	}
	if tuple.Test(0) || !tuple.Test(1) {
		t.Errorf("tuple = %v", tuple)
	}
}

func TestFilterAndAllDropped(t *testing.T) {
	tuple := Bitmap{}.Set(0)
	ref := Bitmap{}.Set(0)
	if tuple.FilterAnd(nil, ref) {
		t.Error("tuple should be dropped")
	}
}

func TestFilterAndWidthMismatch(t *testing.T) {
	// Tuple is wider than sel and ref: high bits pass through.
	tuple := Bitmap{}.Set(0).Set(100)
	sel := Bitmap{}.Set(0)
	ref := Bitmap{}.Set(0)
	if !tuple.FilterAnd(sel, ref) || !tuple.Test(100) || !tuple.Test(0) {
		t.Errorf("width mismatch handling: %v", tuple)
	}
}

func TestFilterAndProperty(t *testing.T) {
	// Property: bit i survives iff (not referenced) or (selected).
	f := func(tu, se, re uint16) bool {
		var tuple, sel, ref Bitmap
		for i := 0; i < 16; i++ {
			if tu&(1<<i) != 0 {
				tuple = tuple.Set(i)
			}
			if se&(1<<i) != 0 {
				sel = sel.Set(i)
			}
			if re&(1<<i) != 0 {
				ref = ref.Set(i)
			}
		}
		before := tuple.Clone()
		tuple.FilterAnd(sel, ref)
		for i := 0; i < 16; i++ {
			want := before.Test(i) && (!ref.Test(i) || sel.Test(i))
			if tuple.Test(i) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
