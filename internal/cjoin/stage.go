package cjoin

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sharedq/internal/catalog"
	"sharedq/internal/comm"
	"sharedq/internal/exec"
	"sharedq/internal/expr"
	"sharedq/internal/metrics"
	"sharedq/internal/pages"
	"sharedq/internal/plan"
	"sharedq/internal/qpipe"
	"sharedq/internal/vec"
)

// ErrClosed is returned by Submit after Close: the stage no longer
// admits queries.
var ErrClosed = errors.New("cjoin: stage is closed")

// Config tunes the CJOIN stage.
type Config struct {
	// PipelineThreads is the number of worker threads passing fact
	// tuples through the filter chain (the paper's horizontal
	// configuration). Default 4.
	PipelineThreads int
	// DistributorParts is the number of distributor-part threads. The
	// original CJOIN's single-threaded distributor is a bottleneck the
	// integration fixes by adding parts (§3.2); set 1 to reproduce the
	// bottleneck in the ablation benchmark. Default 4.
	DistributorParts int
	// SP enables Simultaneous Pipelining on the CJOIN stage (step WoP):
	// an identical star-query packet attaches as a satellite and never
	// enters the GQP (§3.3) — the CJOIN-SP configuration.
	SP bool
	// ScanPartitions is the number of partitioned preprocessor scanners:
	// the fact table's page list is split into that many contiguous
	// ranges, each cycled by its own scanner feeding the shared pipeline.
	// A query's admission window is tracked per partition, so it still
	// sees exactly one full circular pass over the whole table. It is a
	// starting point: skewed page weights make partition passes finish
	// at very different times, so an idle scanner may split the busiest
	// partition live (see MaxScanPartitions). Default: the environment's
	// parallelism (exec.Env.Workers).
	ScanPartitions int
	// MaxScanPartitions caps live partition splitting: an idle scanner
	// steals the unswept tail of the partition with the most pages left
	// in its cycle, spawning a new scanner for it, up to this many
	// partitions total. 0 defaults to twice the starting partition
	// count; negative disables splitting.
	MaxScanPartitions int
	// StragglerLagPages enables straggler detachment: a query whose
	// output port is full even after absorbing this many extra pages —
	// its consumer has fallen that far behind the shared pipeline — has
	// its admission window retracted instead of convoying every query in
	// the plan, and the stage re-derives its undelivered pages privately
	// into the same output stream. Results are identical; the global
	// pipeline returns to full speed. 0 disables (the paper's
	// stall-on-slow-consumer behavior).
	StragglerLagPages int
	// Ports configures the output communication model and sizes.
	Ports qpipe.PortConfig
}

func (c Config) withDefaults() Config {
	if c.PipelineThreads <= 0 {
		c.PipelineThreads = 4
	}
	if c.DistributorParts <= 0 {
		c.DistributorParts = 4
	}
	if c.Ports.PageRows <= 0 {
		c.Ports.PageRows = comm.DefaultPageRows
	}
	return c
}

// query is one admitted CJOIN packet.
type query struct {
	plan *plan.Query
	bit  int
	out  qpipe.OutPort
	myIn qpipe.InPort // the owner's reader, attached before admission
	sig  string

	// Per-partition admission window, guarded by stage.mu: the scanner
	// position each partition was at when the query was admitted, how
	// many of the partition's pages it has been shown, and whether its
	// window there is still open. The query has seen the whole fact
	// table exactly once when every partition's window has closed.
	entry     []int
	seen      []int
	open      []bool
	openParts int

	outstanding atomic.Int64 // batches in flight carrying this query's bit
	done        atomic.Bool  // preprocessor completed the circular window
	closed      atomic.Bool
	cancelled   atomic.Bool // admission window retracted before completion

	// Straggler detachment (Config.StragglerLagPages): straggled flips
	// when the distributor cannot deliver to this query's output even
	// with elastic growth; detached claims the one-shot window
	// retraction + private continuation; missed records the fact pages
	// skipped between the two (plus the refused page itself), which the
	// continuation re-derives.
	straggled atomic.Bool
	detached  atomic.Bool
	missMu    sync.Mutex
	missed    []int

	wopMu   sync.Mutex // guards started against satellite attachment
	started bool       // first output emitted; step WoP closed

	dimPos   []int // filter-chain position of each of the plan's dims
	factVec  expr.VecPred
	outKinds []pages.Kind // joined-schema layout of the query's output batches

	// qerr is an error scoped to this query alone (today: a panic
	// recovered while assembling its output — its own predicate kernel,
	// typically). The other queries sharing the batch are untouched.
	qerrMu sync.Mutex
	qerr   error
}

func (qq *query) fail(err error) {
	qq.qerrMu.Lock()
	if qq.qerr == nil {
		qq.qerr = err
	}
	qq.qerrMu.Unlock()
}

func (qq *query) Err() error {
	qq.qerrMu.Lock()
	defer qq.qerrMu.Unlock()
	return qq.qerr
}

// filter is one dimension's shared selection + shared hash join.
type filter struct {
	table      string
	dimKeyIdx  int
	factColIdx int
	ht         *dimTable
	ref        Bitmap // queries referencing this dimension
}

// batch is the unit flowing through the pipeline: a fact page's
// decoded column batch (shared with every other consumer of the page),
// per-tuple bitmaps, and the matched dimension rows per filter
// position.
type batch struct {
	facts   *vec.Batch
	idx     int // fact page index, for straggler miss accounting
	bms     []Bitmap
	dims    [][]pages.Row // [filter][tuple]
	queries []*query      // active queries at emission
}

// Stage is the CJOIN operator packaged as a QPipe stage: it accepts
// star-query packets and evaluates all of their joins on one shared
// pipeline.
type Stage struct {
	env   *exec.Env
	cfg   Config
	stats *metrics.CounterSet

	mu        sync.Mutex
	cond      *sync.Cond
	pending   []*query
	active    []*query
	hosts     map[string]*query // SP registry (step WoP)
	nextBit   int
	freeBit   []int
	dirtyBit  []int // freed bits not yet cleared from the filters
	parts     []scanPart
	maxParts  int      // live-splitting bound on len(parts)
	admitDone []*query // completed at admission (no pages to show)
	closed    bool

	maxLag int // Config.StragglerLagPages
	//sharedq:counters robust
	robust *metrics.CounterSet // straggler/split counters (may be nil)

	inflight atomic.Int64 // batches emitted but not yet fully distributed

	filterMu sync.RWMutex
	filters  []*filter

	preQ   chan *batch
	distQ  chan *batch
	wg     sync.WaitGroup
	scanWG sync.WaitGroup // the partitioned scanners; closes preQ on drain

	admissionNanos atomic.Int64
	passFn         atomic.Value // func(), observer of circular-pass wraps
	errMu          sync.Mutex
	err            error
}

// OnPass registers fn to run each time a partitioned scanner wraps its
// circular page range — a pass boundary, the moment CJOIN admission
// windows naturally open and close. An admission controller uses it to
// align admission batches to pass boundaries. fn runs on a scanner
// goroutine outside the stage lock and must be fast and non-blocking;
// passing nil unregisters. Each wrap also bumps the cjoin_pass counter.
func (st *Stage) OnPass(fn func()) {
	st.passFn.Store(passHook{fn})
}

// passHook wraps the callback so atomic.Value tolerates storing nil.
type passHook struct{ fn func() }

// scanPart is one partitioned scanner's share of the fact table: a
// contiguous page range cycled circularly, plus the bits of the queries
// whose admission window is currently open in this partition. emitted
// is the partition's progress counter; the gap between partitions'
// remaining work is what live splitting levels out.
type scanPart struct {
	lo, hi  int // page range [lo, hi)
	pos     int // next page index to emit; guarded by stage.mu
	emitted int64
	mask    Bitmap
}

// NewStage creates and starts a CJOIN stage over env. Close must be
// called to stop its goroutines.
func NewStage(env *exec.Env, cfg Config) *Stage {
	cfg = cfg.withDefaults()
	if cfg.Ports.Col == nil {
		cfg.Ports.Col = env.Col
	}
	if cfg.Ports.Pool == nil {
		cfg.Ports.Pool = env.Recycle
	}
	st := &Stage{
		env:    env,
		cfg:    cfg,
		stats:  metrics.NewCounterSet(),
		hosts:  make(map[string]*query),
		preQ:   make(chan *batch, cfg.PipelineThreads*2),
		distQ:  make(chan *batch, cfg.DistributorParts*2),
		maxLag: cfg.StragglerLagPages,
	}
	if env.Guard != nil {
		st.robust = env.Guard.Counters
	}
	st.cond = sync.NewCond(&st.mu)

	// Partition the fact pages into contiguous ranges, one scanner each.
	nPages := 0
	if fact, ok := env.Cat.FactTable(); ok {
		nPages = fact.NumPages
	}
	nScan := cfg.ScanPartitions
	if nScan <= 0 {
		nScan = env.Workers()
	}
	if nScan > nPages {
		nScan = nPages
	}
	if nScan < 1 {
		nScan = 1
	}
	st.parts = make([]scanPart, nScan)
	for i := range st.parts {
		lo := i * nPages / nScan
		hi := (i + 1) * nPages / nScan
		st.parts[i] = scanPart{lo: lo, hi: hi, pos: lo}
	}
	switch {
	case cfg.MaxScanPartitions > 0:
		st.maxParts = cfg.MaxScanPartitions
	case cfg.MaxScanPartitions == 0:
		st.maxParts = 2 * nScan
	default:
		st.maxParts = nScan // splitting disabled
	}
	for i := range st.parts {
		st.wg.Add(1)
		st.scanWG.Add(1)
		go st.scanner(i)
	}
	go func() {
		st.scanWG.Wait()
		close(st.preQ)
	}()

	var filterWG sync.WaitGroup
	for i := 0; i < cfg.PipelineThreads; i++ {
		st.wg.Add(1)
		filterWG.Add(1)
		go func() {
			defer st.wg.Done()
			defer filterWG.Done()
			st.pipelineWorker()
		}()
	}
	go func() {
		filterWG.Wait()
		close(st.distQ)
	}()
	for i := 0; i < cfg.DistributorParts; i++ {
		st.wg.Add(1)
		go func() {
			defer st.wg.Done()
			st.distributorPart()
		}()
	}
	return st
}

// Close shuts the stage down gracefully: it stops admitting new
// queries (later Submits return ErrClosed), lets every in-flight query
// finish its circular admission window, and then waits for the
// scanners, pipeline workers and distributor parts to unwind. Safe to
// call more than once. Callers that cannot wait for in-flight queries
// cancel them first (SubmitCtx) — a cancelled query retracts its
// window immediately, so a cancel-then-Close shutdown is prompt.
func (st *Stage) Close() {
	st.mu.Lock()
	st.closed = true
	st.cond.Broadcast()
	st.mu.Unlock()
	st.wg.Wait()
}

// Stats returns sharing and admission counters: cjoin_admitted,
// cjoin_batches (admission batches), cjoin_shared (SP satellites), and
// cjoin_fact_batches (fact column batches emitted by the preprocessor
// — the batch-pipeline unit the Table 2 harness compares across
// systems).
func (st *Stage) Stats() map[string]int64 { return st.stats.Snapshot() }

// AdmissionTime returns the cumulative time spent in admission phases
// (the "CJOIN Admission" series of Figure 11).
func (st *Stage) AdmissionTime() time.Duration {
	return time.Duration(st.admissionNanos.Load())
}

func (st *Stage) fail(err error) {
	st.errMu.Lock()
	defer st.errMu.Unlock()
	if st.err == nil {
		st.err = err
	}
}

// Err returns the first asynchronous pipeline error.
func (st *Stage) Err() error {
	st.errMu.Lock()
	defer st.errMu.Unlock()
	return st.err
}

// Submit runs one star query through the global query plan and returns
// its output rows. Safe for concurrent use.
func (st *Stage) Submit(q *plan.Query) ([]pages.Row, error) {
	return st.SubmitCtx(context.Background(), q)
}

// SubmitCtx is Submit under a context. A cancelled or timed-out query
// retracts its admission window immediately — its bit is cleared from
// every partition mask so it stops gating the circular pass, its slot
// in the filter bitmaps is queued for retirement, and the distributor
// stops assembling output batches for it — and SubmitCtx returns
// ctx.Err(). An SP satellite whose host is cancelled mid-stream
// resubmits transparently (its truncated stream is discarded).
func (st *Stage) SubmitCtx(ctx context.Context, q *plan.Query) ([]pages.Row, error) {
	var out []pages.Row
	if err := st.SubmitStreamCtx(ctx, q, exec.CollectSink(&out)); err != nil {
		return nil, err
	}
	return out, nil
}

// SubmitStreamCtx is SubmitCtx with incremental delivery: the query's
// output batches are projected and handed to emit as the distributor
// produces them (aggregates and sorted queries emit one final chunk,
// see qpipe.DrainStream). An SP satellite cannot stream — it must see
// its host's complete, untruncated result before any row may be
// surfaced (an abandoned host forces a resubmit) — so satellites
// materialize first and then emit. An error return may follow chunks
// already emitted; the stream is complete only on a nil return.
func (st *Stage) SubmitStreamCtx(ctx context.Context, q *plan.Query, emit exec.RowSink) error {
	if !q.IsStarJoinable() {
		return fmt.Errorf("cjoin: %q is not a star query", q.SQL)
	}
	sig := q.JoinPrefixSignature(len(q.Dims) - 1)

	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		st.mu.Lock()
		if st.closed {
			st.mu.Unlock()
			return ErrClosed
		}
		if st.cfg.SP {
			if h, ok := st.hosts[sig]; ok {
				h.wopMu.Lock()
				if !h.started {
					// Step WoP open: the new packet is identical to an
					// admitted one — reuse its results and skip admission,
					// bitmap extension and redundant evaluation entirely
					// (§3.3).
					in := h.out.AddReader(true)
					h.wopMu.Unlock()
					st.mu.Unlock()
					stopWatch := context.AfterFunc(ctx, in.Abort)
					rows, derr := drainContained(st.env, q, in)
					stopWatch()
					if err := ctx.Err(); err != nil {
						return err
					}
					if derr != nil {
						return derr
					}
					if h.cancelled.Load() {
						// The host was abandoned and its output stream is
						// truncated; run the query ourselves. No share
						// happened, so the counter stays untouched.
						continue
					}
					st.stats.Get("cjoin_shared").Inc()
					if err := st.Err(); err != nil {
						return err
					}
					return emit(rows)
				}
				h.wopMu.Unlock()
			}
		}
		qq := &query{
			plan:     q,
			out:      st.cfg.Ports.NewOutPort(),
			sig:      sig,
			factVec:  expr.CompileVecPred(q.FactPred),
			outKinds: vec.Kinds(q.JoinedSchema),
		}
		qq.myIn = qq.out.AddReader(true)
		st.pending = append(st.pending, qq)
		if st.cfg.SP {
			st.hosts[sig] = qq
		}
		st.cond.Broadcast()
		st.mu.Unlock()

		stopWatch := context.AfterFunc(ctx, func() {
			st.retract(qq)
			qq.myIn.Abort()
		})
		derr := drainStreamContained(st.env, q, qq.myIn, emit)
		stopWatch()
		st.unregister(qq)
		if err := ctx.Err(); err != nil {
			return err
		}
		if derr == nil {
			derr = qq.Err()
		}
		if derr != nil {
			// The query must not leave its admission window behind: a
			// panicked drain no longer consumes the output stream.
			st.retract(qq)
			return derr
		}
		return st.Err()
	}
}

func (st *Stage) unregister(qq *query) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.hosts[qq.sig] == qq {
		delete(st.hosts, qq.sig)
	}
}

// drainContained drains a query's output on the submitter's goroutine,
// converting a panic in the per-query tail (aggregation, sort) into
// that query's error. The port is cancelled on the panic path so held
// pages release and the pipeline is not backpressured by a dead reader.
func drainContained(env *exec.Env, q *plan.Query, in qpipe.InPort) (rows []pages.Row, err error) {
	defer func() {
		if r := recover(); r != nil {
			rows, err = nil, exec.RecoverPanic(env, r)
			in.Cancel()
		}
	}()
	return qpipe.Drain(env, q, in), nil
}

// drainStreamContained is drainContained with incremental delivery via
// qpipe.DrainStream: plain projections emit one chunk per output page
// while the pipeline still runs; blocking tails (aggregation, sort)
// emit a single final chunk. Panic containment and the cancel-on-panic
// port discipline are identical to drainContained.
func drainStreamContained(env *exec.Env, q *plan.Query, in qpipe.InPort, emit exec.RowSink) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = exec.RecoverPanic(env, r)
			in.Cancel()
		}
	}()
	return qpipe.DrainStream(env, q, in, emit)
}

// retract withdraws a cancelled query from the global plan: still-
// pending queries simply leave the queue; admitted ones close their
// remaining per-partition admission windows (clearing their bit from
// the partition masks so scanners stop emitting on their behalf) and
// queue their filter bit for retirement at the next admission pause.
// Batches already in flight still carry the bit; the distributor skips
// assembling output for a cancelled query and its outstanding count
// drains as usual, closing the output port.
func (st *Stage) retract(qq *query) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for i, p := range st.pending {
		if p == qq {
			st.pending = append(st.pending[:i], st.pending[i+1:]...)
			qq.cancelled.Store(true)
			if st.hosts[qq.sig] == qq {
				delete(st.hosts, qq.sig)
			}
			qq.done.Store(true)
			st.closeQuery(qq)
			st.stats.Get("cjoin_retracted").Inc()
			return
		}
	}
	for i, a := range st.active {
		if a == qq {
			qq.cancelled.Store(true)
			if st.hosts[qq.sig] == qq {
				delete(st.hosts, qq.sig)
			}
			for pi := range qq.open {
				if qq.open[pi] {
					qq.open[pi] = false
					st.parts[pi].mask.Clear(qq.bit)
				}
			}
			qq.openParts = 0
			st.dirtyBit = append(st.dirtyBit, qq.bit)
			st.active = append(st.active[:i], st.active[i+1:]...)
			qq.done.Store(true)
			if qq.outstanding.Load() == 0 {
				st.closeQuery(qq)
			}
			st.stats.Get("cjoin_retracted").Inc()
			// Scanners idling on this query's windows re-check their
			// open sets (and the Close exit condition).
			st.cond.Broadcast()
			return
		}
	}
	// Already completed (or already retracted): nothing to withdraw.
}

// scanner is partition pi's preprocessor: it cycles the partition's
// page range, admits pending query batches between pages, and closes a
// query's window in this partition once its entry position comes up
// again. The union of all partitions' single circular passes shows each
// query every fact page exactly once — the original CJOIN admission-
// window semantics, with the scan itself fanned out across partitions.
func (st *Stage) scanner(pi int) {
	defer st.wg.Done()
	defer st.scanWG.Done()
	fact, _ := st.env.Cat.FactTable()
	for {
		st.mu.Lock()
		// Admission: one pause per batch of pending queries, performed
		// by whichever scanner reaches them first.
		if len(st.pending) > 0 {
			batchQ := st.pending
			st.pending = nil
			st.admit(batchQ)
		}
		p := &st.parts[pi]
		// Completion: queries whose entry position in this partition
		// comes up again have seen every one of its pages. A query whose
		// last partition window closes is fully done. Queries completed
		// trivially at admission are picked up here too.
		completed := st.admitDone
		st.admitDone = nil
		var open []*query
		for i := 0; i < len(st.active); {
			qq := st.active[i]
			if qq.open[pi] && qq.entry[pi] == p.pos && qq.seen[pi] > 0 {
				qq.open[pi] = false
				qq.openParts--
				p.mask.Clear(qq.bit)
				if qq.openParts == 0 {
					st.dirtyBit = append(st.dirtyBit, qq.bit)
					st.active = append(st.active[:i], st.active[i+1:]...)
					qq.done.Store(true)
					completed = append(completed, qq)
					// Scanners idling on the exit condition re-check it.
					st.cond.Broadcast()
					continue
				}
			}
			if qq.open[pi] {
				open = append(open, qq)
			}
			i++
		}
		if len(open) == 0 {
			if st.closed && len(st.pending) == 0 && len(st.active) == 0 {
				st.mu.Unlock()
				st.finishQueries(completed)
				return
			}
			if len(completed) == 0 {
				// Idle: nothing to scan for in this partition. Before
				// sleeping, try to split the busiest partition's unswept
				// tail into a new one — skewed page weights leave some
				// partitions far behind while this scanner has nothing
				// to do. On a split, loop: another may be worth taking.
				if st.splitBusiestLocked() {
					st.mu.Unlock()
					continue
				}
				// Nothing to steal either. Sleep until a submission, an
				// admission by another scanner, or Close arrives.
				st.cond.Wait()
				st.mu.Unlock()
				continue
			}
			st.mu.Unlock()
			st.finishQueries(completed)
			continue
		}
		idx := p.pos
		wrapped := false
		p.emitted++
		if p.pos++; p.pos == p.hi {
			p.pos = p.lo
			wrapped = true
			st.stats.Get("cjoin_pass").Inc()
		}
		mask := p.mask.Clone()
		for _, qq := range open {
			qq.seen[pi]++
			qq.outstanding.Add(1)
		}
		st.inflight.Add(1)
		st.mu.Unlock()
		if wrapped {
			if h, ok := st.passFn.Load().(passHook); ok && h.fn != nil {
				h.fn()
			}
		}
		st.finishQueries(completed)

		bat, err := st.readFactBatch(fact, idx)
		if err != nil {
			st.fail(err)
			st.mu.Lock()
			// The failed batch never ships: undo its outstanding claims,
			// or the open queries' output ports would never close and
			// their Submits would block forever. A query retracted since
			// the claim was taken is already done and out of st.active —
			// the sweep below won't see it, so the last claim dropped
			// here must close its port (mirroring distributorPart), or
			// an attached SP satellite drains it forever.
			for _, qq := range open {
				if qq.outstanding.Add(-1) == 0 && qq.done.Load() {
					completed = append(completed, qq)
				}
			}
			for _, qq := range st.active {
				for j := range qq.open {
					if qq.open[j] {
						qq.open[j] = false
						st.parts[j].mask.Clear(qq.bit)
					}
				}
				qq.openParts = 0
				st.dirtyBit = append(st.dirtyBit, qq.bit)
				qq.done.Store(true)
				completed = append(completed, qq)
			}
			st.active = nil
			st.inflight.Add(-1)
			st.mu.Unlock()
			st.finishQueries(completed)
			continue
		}
		// Per-tuple bitmaps are carved out of one flat word arena (two
		// allocations per batch instead of one per fact tuple). Widths
		// are frozen at emission; the pipeline only mutates words in
		// place, so the carved slices never grow into each other.
		st.stats.Get("cjoin_fact_batches").Inc()
		b := &batch{facts: bat, idx: idx, bms: make([]Bitmap, bat.Len()), queries: open}
		if w := len(mask); w > 0 {
			flat := make([]uint64, w*bat.Len())
			for i := range b.bms {
				bm := flat[i*w : (i+1)*w : (i+1)*w]
				copy(bm, mask)
				b.bms[i] = Bitmap(bm)
			}
		}
		st.preQ <- b
	}
}

// readFactBatch reads one fact page for the preprocessor, converting a
// panic during fetch or decode into an error so the scanner's existing
// read-failure path (fail every open query, undo outstanding claims)
// handles it — no scanner goroutine dies holding admission state.
func (st *Stage) readFactBatch(t *catalog.Table, idx int) (b *vec.Batch, err error) {
	defer func() {
		if r := recover(); r != nil {
			b, err = nil, exec.RecoverPanic(st.env, r)
		}
	}()
	return exec.ReadTableBatch(st.env, t, idx)
}

// minSplitPages is the smallest tail worth carving into a partition of
// its own: below this, spawning a scanner costs more than it levels.
const minSplitPages = 2

// splitBusiestLocked carves the unswept tail of the partition with the
// most pages left in its cycle into a new partition with its own
// scanner, so an idle scanner turns into progress on the heavy range.
// The split point mid is chosen past every open query's entry position
// in that partition, which keeps exactly-once delivery trivially
// intact: every open window either still needs the whole tail (entry
// at or before the partition's position — it gets a fresh one-pass
// window on the new partition) or none of it (entry between position
// and mid — its window stays wholly inside the shrunk partition).
// Reports whether a split happened. Caller holds st.mu.
func (st *Stage) splitBusiestLocked() bool {
	if len(st.parts) >= st.maxParts || len(st.active) == 0 {
		return false
	}
	// The busiest partition: most pages between its position and the
	// end of its range, among partitions some query's window is open in.
	openIn := make([]bool, len(st.parts))
	for _, qq := range st.active {
		for pi, o := range qq.open {
			if o {
				openIn[pi] = true
			}
		}
	}
	best, bestRem := -1, 2*minSplitPages-1
	for i := range st.parts {
		if !openIn[i] {
			continue
		}
		if rem := st.parts[i].hi - st.parts[i].pos; rem > bestRem {
			best, bestRem = i, rem
		}
	}
	if best < 0 {
		return false
	}
	p := &st.parts[best]
	mid := (p.pos + p.hi + 1) / 2
	// Entries strictly ahead of the position mark pages already seen
	// this cycle; the stolen tail must start past all of them (and past
	// the position itself) so no window needs a partial pass of it.
	for _, qq := range st.active {
		if qq.open[best] && qq.entry[best] > p.pos && qq.entry[best]+1 > mid {
			mid = qq.entry[best] + 1
		}
	}
	if mid <= p.pos {
		mid = p.pos + 1
	}
	if p.hi-mid < minSplitPages {
		return false
	}
	k := len(st.parts)
	st.parts = append(st.parts, scanPart{lo: mid, hi: p.hi, pos: mid})
	p = &st.parts[best] // re-take: append may have moved the backing array
	p.hi = mid
	np := &st.parts[k]
	for _, qq := range st.active {
		// A window still needing the tail (entry at or before pos, or a
		// freshly opened full-range window) moves that need to a fresh
		// one-pass window on the new partition.
		take := qq.open[best] && (qq.entry[best] < p.pos || qq.seen[best] == 0)
		qq.entry = append(qq.entry, mid)
		qq.seen = append(qq.seen, 0)
		qq.open = append(qq.open, take)
		if take {
			qq.openParts++
			np.mask = np.mask.Set(qq.bit)
		}
	}
	st.stats.Get("cjoin_partition_splits").Inc()
	st.robustInc("partition_splits")
	st.wg.Add(1)
	st.scanWG.Add(1)
	go st.scanner(k)
	return true
}

// robustInc bumps a fault-tolerance counter when the stage has a
// robust counter set wired (it shares the engine-wide set).
//
//sharedq:counterfn robust
func (st *Stage) robustInc(name string) {
	if st.robust != nil {
		st.robust.Get(name).Inc()
	}
}

// recordMiss notes a fact page the shared pipeline skipped for a
// straggled query; the private continuation re-derives it.
func (qq *query) recordMiss(idx int) {
	qq.missMu.Lock()
	qq.missed = append(qq.missed, idx)
	qq.missMu.Unlock()
}

// finishQueries closes the outputs of completed queries that have no
// batches in flight; distributor parts close the rest as their last
// batches drain.
func (st *Stage) finishQueries(qs []*query) {
	for _, qq := range qs {
		if qq.outstanding.Load() == 0 {
			st.closeQuery(qq)
		}
	}
}

func (st *Stage) closeQuery(qq *query) {
	if qq.closed.CompareAndSwap(false, true) {
		qq.out.Close()
	}
}

// admit performs the batched admission phase (§3.2): assign bits, add
// or update filters by scanning the referenced dimension tables, and
// record each query's entry point on the circular fact scan.
// Caller holds st.mu; the filter chain is locked for writing, which
// drains in-flight probes — the pipeline pause.
func (st *Stage) admit(qs []*query) {
	t0 := time.Now()
	defer func() {
		d := time.Since(t0)
		st.admissionNanos.Add(int64(d))
		st.env.Col.Add(metrics.Locks, d)
	}()
	st.stats.Get("cjoin_batches").Inc()

	// Pause the pipeline: wait until every emitted batch has fully
	// drained through the distributor, so filter mutation and bit reuse
	// cannot corrupt in-flight tuples. This stall is admission cost (e).
	for st.inflight.Load() > 0 {
		time.Sleep(50 * time.Microsecond)
	}

	st.filterMu.Lock()
	defer st.filterMu.Unlock()

	// Retire freed bits: clear them from every filter so they can be
	// reassigned without leaking the old query's selections.
	for _, bit := range st.dirtyBit {
		for _, f := range st.filters {
			f.ref.Clear(bit)
			f.ht.clearBit(bit)
		}
		st.freeBit = append(st.freeBit, bit)
	}
	st.dirtyBit = nil

	for _, qq := range qs {
		if len(st.freeBit) > 0 {
			qq.bit = st.freeBit[len(st.freeBit)-1]
			st.freeBit = st.freeBit[:len(st.freeBit)-1]
		} else {
			qq.bit = st.nextBit
			st.nextBit++
		}
		// Open one admission window per scan partition at its current
		// position; the query completes when every window has wrapped.
		qq.entry = make([]int, len(st.parts))
		qq.seen = make([]int, len(st.parts))
		qq.open = make([]bool, len(st.parts))
		qq.openParts = 0
		for i := range st.parts {
			p := &st.parts[i]
			qq.entry[i] = p.pos
			if p.hi > p.lo {
				qq.open[i] = true
				qq.openParts++
				p.mask = p.mask.Set(qq.bit)
			}
		}
		qq.dimPos = make([]int, len(qq.plan.Dims))

		for di, d := range qq.plan.Dims {
			fi := st.findOrAddFilter(d)
			qq.dimPos[di] = fi
			f := st.filters[fi]
			f.ref = f.ref.Set(qq.bit)
			if err := st.updateFilter(f, d, qq.bit); err != nil {
				// Scoped to the admitting query: its filter selections are
				// suspect, so its results are discarded at SubmitCtx, but
				// the other queries' bits are untouched.
				qq.fail(err)
			}
		}
		if qq.openParts == 0 {
			// No partition has pages to show (empty fact table): the
			// window is trivially complete at admission.
			st.dirtyBit = append(st.dirtyBit, qq.bit)
			qq.done.Store(true)
			st.admitDone = append(st.admitDone, qq)
		} else {
			st.active = append(st.active, qq)
		}
		st.stats.Get("cjoin_admitted").Inc()
	}
	// Other partitions' scanners may be idle; their open sets changed.
	st.cond.Broadcast()
}

func (st *Stage) findOrAddFilter(d plan.DimJoin) int {
	for i, f := range st.filters {
		if f.table == d.Table {
			return i
		}
	}
	st.filters = append(st.filters, &filter{
		table:      d.Table,
		dimKeyIdx:  d.DimKeyIdx,
		factColIdx: d.FactColIdx,
		ht:         newDimTable(1024),
	})
	return len(st.filters) - 1
}

// updateFilter scans the dimension table (admission cost (a)),
// evaluates the new query's predicate a whole batch at a time over the
// shared decoded pages (cost (b)) and sets the query's bit on selected
// rows, inserting rows as needed (costs (c), (d)).
func (st *Stage) updateFilter(f *filter, d plan.DimJoin, bit int) (err error) {
	// Admission runs under the stage and filter locks; a panicking
	// dimension-predicate kernel converts to an error here so admission
	// completes and the locks release in order.
	defer func() {
		if r := recover(); r != nil {
			err = exec.RecoverPanic(st.env, r)
		}
	}()
	t, err := st.env.Cat.Get(d.Table)
	if err != nil {
		return err
	}
	vpred := expr.CompileVecPred(d.Pred)
	var selBuf []int
	return exec.ScanTableBatches(st.env, t, func(b *vec.Batch) error {
		stop := st.env.Col.Timer(metrics.Joins)
		defer stop()
		sel := vec.FullSel(b.Len(), &selBuf)
		if vpred != nil {
			sel = vpred(b, sel)
		}
		for _, i := range sel {
			f.ht.setBit(b.Value(f.dimKeyIdx, i), b.Row(i), bit)
		}
		return nil
	})
}

// pipelineWorker passes batches through the filter chain: shared hash
// join probes over the raw fact key column plus bitmap ANDs, dropping
// tuples whose bitmaps empty.
func (st *Stage) pipelineWorker() {
	var sels []Bitmap // worker-local scratch, reused across batches
	for b := range st.preQ {
		if err := st.filterBatch(b, &sels); err != nil {
			// A panic mid-chain leaves the batch's bitmaps half-filtered:
			// kill every surviving tuple so no wrong rows ship, record
			// the failure, and still forward the batch — the distributor
			// must drain it to keep the outstanding/inflight protocol
			// (and with it admission pauses and query completion) alive.
			st.fail(err)
			for i := range b.bms {
				b.bms[i] = nil
			}
		}
		st.distQ <- b
	}
}

// filterBatch passes one batch through the filter chain under the read
// lock, converting a panic into an error with the lock cleanly
// released.
func (st *Stage) filterBatch(b *batch, selsp *[]Bitmap) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = exec.RecoverPanic(st.env, r)
		}
	}()
	sels := *selsp
	defer func() { *selsp = sels }()
	st.filterMu.RLock()
	defer st.filterMu.RUnlock()
	filters := st.filters
	n := b.facts.Len()
	// The matched-row table travels with the batch (distributor
	// parts read it after this worker moves on), so it cannot be
	// worker-local scratch; one flat arena backs every filter's row
	// slice to keep it at two allocations per batch.
	b.dims = make([][]pages.Row, len(filters))
	dimArena := make([]pages.Row, len(filters)*n)
	alive := n
	if cap(sels) < n {
		sels = make([]Bitmap, n)
	}
	sels = sels[:n]
	for fi, f := range filters {
		if alive == 0 {
			break
		}
		b.dims[fi] = dimArena[fi*n : (fi+1)*n : (fi+1)*n]
		kc := &b.facts.Cols[f.factColIdx]
		t0 := time.Now()
		if kc.Kind == pages.KindInt {
			keys := kc.I
			for ti := 0; ti < n; ti++ {
				if b.bms[ti] == nil {
					continue
				}
				b.dims[fi][ti], sels[ti] = f.ht.lookupInt(keys[ti])
			}
		} else {
			for ti := 0; ti < n; ti++ {
				if b.bms[ti] == nil {
					continue
				}
				b.dims[fi][ti], sels[ti] = f.ht.lookup(kc.Value(ti))
			}
		}
		st.env.Col.AddSince(metrics.Hashing, t0)
		t1 := time.Now()
		for ti := 0; ti < n; ti++ {
			if b.bms[ti] == nil {
				continue
			}
			if !b.bms[ti].FilterAnd(sels[ti], f.ref) {
				b.bms[ti] = nil
				alive--
			}
		}
		st.env.Col.AddSince(metrics.Joins, t1)
	}
	return nil
}

// distributorPart routes each batch's surviving tuples to the relevant
// queries: per query, it selects tuples with the query's bit, applies
// the query's fact predicate (CJOIN evaluates fact predicates on output
// tuples, §3.2), assembles rows in the query's joined-schema layout and
// emits them to the query's output buffer.
func (st *Stage) distributorPart() {
	var selBuf []int    // reused across batches and queries
	var failed []*query // queries whose delivery panicked this batch
	for b := range st.distQ {
		failed = failed[:0]
		for _, qq := range b.queries {
			var panicked bool
			selBuf, panicked = st.deliverContained(b, qq, selBuf)
			if panicked {
				failed = append(failed, qq)
			}
		}
		for _, qq := range b.queries {
			if qq.outstanding.Add(-1) == 0 && qq.done.Load() {
				st.closeQuery(qq)
			}
		}
		st.inflight.Add(-1)
		// Retraction takes the stage lock, which an admission pause may
		// be holding while it waits for inflight to drain — so it must
		// come after this batch's claims are returned, or the two
		// deadlock (admission waiting on this batch, this part waiting
		// on admission).
		for _, qq := range failed {
			st.retract(qq)
		}
		// Straggler detachment also takes the stage lock, so it too must
		// wait until the batch's claims are settled. The CAS elects
		// exactly one part to perform the retract-and-continue handoff.
		for _, qq := range b.queries {
			if qq.straggled.Load() && qq.detached.CompareAndSwap(false, true) {
				st.detachStraggler(qq)
			}
		}
	}
}

// detachStraggler retracts a straggling query's remaining admission
// windows from the shared plan — the convoy resumes at full speed the
// moment its bit leaves the partition masks — and hands the query to a
// private continuation goroutine. The never-emitted remainder of each
// open window (circularly from the partition's position back to the
// query's entry) is computed here under the stage lock; pages that were
// in flight when the query straggled are on its miss list. The two sets
// are disjoint and together are exactly the pages the consumer has not
// been shown.
func (st *Stage) detachStraggler(qq *query) {
	st.mu.Lock()
	var rem [][2]int
	for i, a := range st.active {
		if a != qq {
			continue
		}
		for pi := range qq.open {
			if !qq.open[pi] {
				continue
			}
			p := &st.parts[pi]
			entry, pos := qq.entry[pi], p.pos
			switch {
			case qq.seen[pi] == 0:
				// Window open, nothing shown yet: the whole range remains.
				if pos < p.hi {
					rem = append(rem, [2]int{pos, p.hi})
				}
				if p.lo < pos {
					rem = append(rem, [2]int{p.lo, pos})
				}
			case entry > pos:
				rem = append(rem, [2]int{pos, entry})
			case entry < pos:
				rem = append(rem, [2]int{pos, p.hi})
				if p.lo < entry {
					rem = append(rem, [2]int{p.lo, entry})
				}
				// entry == pos with pages seen: the window just completed;
				// nothing remains.
			}
			qq.open[pi] = false
			p.mask.Clear(qq.bit)
		}
		qq.openParts = 0
		st.dirtyBit = append(st.dirtyBit, qq.bit)
		st.active = append(st.active[:i], st.active[i+1:]...)
		qq.done.Store(true)
		// Scanners idling on this query's windows re-check their open sets.
		st.cond.Broadcast()
		break
	}
	st.stats.Get("cjoin_straggler_detached").Inc()
	st.robustInc("straggler_detached")
	st.mu.Unlock()
	st.wg.Add(1)
	go st.continueDetached(qq, rem)
}

// continueDetached is a detached straggler's private continuation: it
// waits for the shared pipeline's last claims on the query to settle
// (which completes the missed-page list), then re-derives every
// undelivered fact page — the recorded misses plus the remaining spans
// of the retracted windows — through private hash joins, emitting into
// the same output port the shared plan was feeding. The consumer
// observes one uninterrupted result stream with the same rows it would
// have received; only the producer changed underneath it. Blocking on
// the slow consumer's full port stalls only this goroutine.
func (st *Stage) continueDetached(qq *query, rem [][2]int) {
	defer st.wg.Done()
	// closed was pre-claimed at refusal, so every closeQuery attempt
	// no-ops: this defer is the port's sole closer.
	defer qq.out.Close()
	defer func() {
		if r := recover(); r != nil {
			qq.fail(exec.RecoverPanic(st.env, r))
		}
	}()
	for qq.outstanding.Load() > 0 {
		time.Sleep(50 * time.Microsecond)
	}
	qq.missMu.Lock()
	missed := qq.missed
	qq.missed = nil
	qq.missMu.Unlock()
	if qq.cancelled.Load() {
		return
	}
	fact, ok := st.env.Cat.FactTable()
	if !ok || (len(missed) == 0 && len(rem) == 0) {
		return
	}
	// Private build sides, one per dimension in plan order — chained
	// probes produce the fact-columns-then-dims joined layout, the same
	// layout the shared distributor assembles.
	joins := make([]*exec.BatchJoin, len(qq.plan.Dims))
	kinds := vec.Kinds(fact.Schema)
	for di := range qq.plan.Dims {
		bj, err := exec.BuildBatchJoin(st.env, qq.plan.Dims[di])
		if err != nil {
			qq.fail(err)
			return
		}
		kinds = bj.SetProbeKinds(kinds)
		joins[di] = bj
	}
	var selBuf []int
	var ps exec.ProbeScratch
	derive := func(idx int) bool {
		bat, err := st.readFactBatch(fact, idx)
		if err != nil {
			qq.fail(err)
			return false
		}
		sel := vec.FullSel(bat.Len(), &selBuf)
		if qq.factVec != nil {
			sel = qq.factVec(bat, sel)
		}
		if len(sel) == 0 {
			return true
		}
		if len(joins) == 0 {
			// No dimensions: gather the selected fact rows out of the
			// shared decoded batch into an owned output batch.
			out := st.env.Recycle.Get(qq.outKinds, len(sel))
			for c := range out.Cols {
				bat.Cols[c].GatherInto(&out.Cols[c], sel)
			}
			out.SetLen(len(sel))
			qq.out.Emit(comm.NewBatchPage(out))
			return true
		}
		cur := bat
		for _, bj := range joins {
			nxt := bj.Probe(st.env, cur, sel, &ps)
			if cur != bat {
				cur.Release()
			}
			cur = nxt
			if cur.Len() == 0 {
				cur.Release()
				return true
			}
			sel = vec.FullSel(cur.Len(), &selBuf)
		}
		qq.out.Emit(comm.NewBatchPage(cur))
		return true
	}
	for _, idx := range missed {
		if !derive(idx) {
			return
		}
	}
	for _, span := range rem {
		for i := span[0]; i < span[1]; i++ {
			if !derive(i) {
				return
			}
		}
	}
}

// deliverContained is deliver under panic containment: a panicking
// kernel (the query's own fact predicate, typically) fails exactly that
// query — the caller retracts it once the batch's claims are settled,
// closing its window, retiring its bit and ending its output port —
// while the batch's other queries receive their tuples normally and
// the outstanding/inflight protocol stays intact.
func (st *Stage) deliverContained(b *batch, qq *query, sel []int) (out []int, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			qq.fail(exec.RecoverPanic(st.env, r))
			out, panicked = sel, true
		}
	}()
	return st.deliver(b, qq, sel[:0]), false
}

// deliver routes batch b's surviving tuples to query qq; sel is the
// caller's reusable selection scratch, returned (possibly grown) for
// the next call.
func (st *Stage) deliver(b *batch, qq *query, sel []int) []int {
	if qq.cancelled.Load() {
		// Retracted mid-flight: nobody will read this query's output.
		return sel
	}
	if qq.straggled.Load() {
		// Detached mid-flight: the shared pipeline no longer assembles
		// output for this query. Its private continuation re-derives this
		// page once the batch's claim settles, so record it and move on.
		qq.recordMiss(b.idx)
		return sel
	}
	t0 := time.Now()
	// Select this query's surviving tuples, then apply its fact
	// predicate over the shared fact batch (CJOIN evaluates fact
	// predicates on output tuples, §3.2) — both vectorized.
	for ti, bm := range b.bms {
		if bm != nil && bm.Test(qq.bit) {
			sel = append(sel, ti)
		}
	}
	if qq.factVec != nil && len(sel) > 0 {
		sel = qq.factVec(b.facts, sel)
	}
	if len(sel) == 0 {
		st.env.Col.AddSince(metrics.Misc, t0)
		return sel
	}
	// Assemble the output batch in the query's joined-schema layout:
	// fact columns gathered from the shared batch, dimension columns
	// appended from the matched dimension rows. The batch is checked
	// out of the pool; emitting transfers ownership to the query's
	// output port, whose last reader releases it.
	out := st.env.Recycle.Get(qq.outKinds, len(sel))
	// If assembly panics below, the checkout must not leak; Emit is the
	// ownership hand-off, after which this defer sees no panic.
	defer func() {
		if r := recover(); r != nil {
			out.Release()
			panic(r)
		}
	}()
	nf := b.facts.NumCols()
	for c := 0; c < nf; c++ {
		b.facts.Cols[c].GatherInto(&out.Cols[c], sel)
	}
	col := nf
	for di, fi := range qq.dimPos {
		w := qq.plan.Dims[di].Schema.Len()
		for j := 0; j < w; j++ {
			// The dim rows were materialized from schema-typed batches,
			// so the output column kind is authoritative.
			vec.GatherRows(&out.Cols[col+j], b.dims[fi], j, sel)
		}
		col += w
	}
	out.SetLen(len(sel))
	st.env.Col.AddSince(metrics.Misc, t0)
	qq.wopMu.Lock()
	qq.started = true
	qq.wopMu.Unlock()
	pg := comm.NewBatchPage(out)
	if st.maxLag > 0 {
		if eo, ok := qq.out.(qpipe.ElasticOut); ok {
			if !eo.EmitGrow(pg, st.maxLag) {
				// The query's consumer is maxLag pages behind even after
				// elastic growth: a straggler. Refusal keeps page ownership
				// here — drop the batch, mark the query for detachment, and
				// record the page for private re-derivation. closed is
				// pre-claimed under the batch's outstanding claim so the
				// normal completion path cannot close the output port out
				// from under the continuation.
				out.Release()
				qq.closed.Store(true)
				qq.straggled.Store(true)
				qq.recordMiss(b.idx)
			}
			return sel
		}
	}
	qq.out.Emit(pg)
	return sel
}
