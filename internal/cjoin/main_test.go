package cjoin

import (
	"testing"

	"sharedq/internal/leakcheck"
)

// TestMain is the package's goroutine-leak gate: stage scanners,
// pipeline workers or distributor parts still running after the tests
// complete fail the build.
func TestMain(m *testing.M) { leakcheck.Main(m) }
