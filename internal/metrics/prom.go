package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteProm renders a counter snapshot in the Prometheus text
// exposition format, one line per counter, prefixed (e.g. "sharedq_").
// A counter name of the form "base:tag" — the convention the admission
// controller uses for per-tenant counters ("tenant_admitted:acme") —
// becomes base{labelName="tag"} with the given label name, so a scrape
// groups tenants under one metric family. Output is sorted by name for
// deterministic scrapes.
func WriteProm(w io.Writer, prefix, labelName string, vals map[string]int64) {
	keys := make([]string, 0, len(vals))
	for k := range vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		name, label, hasLabel := strings.Cut(k, ":")
		name = promSanitize(name)
		if hasLabel {
			fmt.Fprintf(w, "%s%s{%s=%q} %d\n", prefix, name, labelName, label, vals[k])
			continue
		}
		fmt.Fprintf(w, "%s%s %d\n", prefix, name, vals[k])
	}
}

// promSanitize maps a counter name onto the Prometheus metric-name
// alphabet [a-zA-Z0-9_:]; anything else becomes '_'.
func promSanitize(s string) string {
	out := []byte(s)
	for i := 0; i < len(out); i++ {
		c := out[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				out[i] = '_'
			}
		default:
			out[i] = '_'
		}
	}
	return string(out)
}
