// Package metrics provides low-overhead counters and CPU-time accounting
// used to regenerate the paper's measurement tables: average number of
// cores used, I/O read rates, and the per-category CPU breakdowns of
// Figures 11 and 12 (Hashing / Joins / Aggreg. / Scans / Locks / Misc).
//
// The paper measured CPU time with Intel VTune; we self-instrument the
// same code regions instead. A Collector accumulates busy nanoseconds per
// category across all goroutines; dividing by wall-clock time yields the
// "Avg. # Cores Used" figures reported under each experiment.
package metrics

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Category labels a region of CPU work, mirroring the breakdown
// categories of Figure 11/12 in the paper.
type Category int

// CPU-time categories. Hashing covers the hash() and equal() functions at
// the heart of hash-join build/probe (the paper isolates these to compare
// sharing effects free of implementation detail); Joins covers the
// remaining join work, including bitmap bookkeeping in shared operators.
const (
	Hashing Category = iota
	Joins
	Aggregation
	Scans
	Locks
	Misc
	numCategories
)

// String returns the category label used in the paper's figures.
func (c Category) String() string {
	switch c {
	case Hashing:
		return "Hashing"
	case Joins:
		return "Joins"
	case Aggregation:
		return "Aggreg."
	case Scans:
		return "Scans"
	case Locks:
		return "Locks"
	case Misc:
		return "Misc"
	default:
		return fmt.Sprintf("Category(%d)", int(c))
	}
}

// Categories lists all categories in the order the paper stacks them.
func Categories() []Category {
	return []Category{Hashing, Joins, Aggregation, Scans, Locks, Misc}
}

// Collector accumulates CPU busy-time per category and I/O byte counts.
// All methods are safe for concurrent use. The zero value is ready to use.
type Collector struct {
	busy  [numCategories]atomic.Int64 // nanoseconds
	ioRd  atomic.Int64                // bytes read from the device
	ioCh  atomic.Int64                // bytes served from caches
	start atomic.Int64                // wall-clock start, unix nanos
	end   atomic.Int64                // wall-clock end, unix nanos
}

// Start records the wall-clock start of the measured activity period.
func (c *Collector) Start() { c.start.Store(time.Now().UnixNano()) }

// Stop records the wall-clock end of the measured activity period.
func (c *Collector) Stop() { c.end.Store(time.Now().UnixNano()) }

// Add accrues d nanoseconds of busy time to category cat.
func (c *Collector) Add(cat Category, d time.Duration) {
	if c == nil {
		return
	}
	c.busy[cat].Add(int64(d))
}

// Timer starts timing a region of work in category cat and returns a stop
// function. Typical use:
//
//	defer col.Timer(metrics.Hashing)()
func (c *Collector) Timer(cat Category) func() {
	if c == nil {
		return func() {}
	}
	t0 := time.Now()
	return func() { c.busy[cat].Add(int64(time.Since(t0))) }
}

// AddSince accrues the time elapsed since t0 to category cat. It is
// the allocation-free spelling of Timer for hot paths:
//
//	t0 := time.Now()
//	... region ...
//	col.AddSince(metrics.Hashing, t0)
func (c *Collector) AddSince(cat Category, t0 time.Time) {
	if c == nil {
		return
	}
	c.busy[cat].Add(int64(time.Since(t0)))
}

// AddIORead accrues n bytes read from the simulated device.
func (c *Collector) AddIORead(n int64) {
	if c == nil {
		return
	}
	c.ioRd.Add(n)
}

// AddIOCached accrues n bytes served from the FS cache or buffer pool.
func (c *Collector) AddIOCached(n int64) {
	if c == nil {
		return
	}
	c.ioCh.Add(n)
}

// Busy returns the accumulated busy time of category cat.
func (c *Collector) Busy(cat Category) time.Duration {
	return time.Duration(c.busy[cat].Load())
}

// TotalBusy returns busy time summed over all categories.
func (c *Collector) TotalBusy() time.Duration {
	var t int64
	for i := range c.busy {
		t += c.busy[i].Load()
	}
	return time.Duration(t)
}

// Wall returns the wall-clock activity period, or the elapsed time since
// Start if Stop has not been called yet.
func (c *Collector) Wall() time.Duration {
	s := c.start.Load()
	if s == 0 {
		return 0
	}
	e := c.end.Load()
	if e == 0 {
		e = time.Now().UnixNano()
	}
	return time.Duration(e - s)
}

// CoresUsed estimates the average number of cores kept busy during the
// activity period, the statistic the paper reports as "Avg. # Cores Used".
func (c *Collector) CoresUsed() float64 {
	w := c.Wall()
	if w <= 0 {
		return 0
	}
	return float64(c.TotalBusy()) / float64(w)
}

// ReadBytes returns the bytes read from the simulated device.
func (c *Collector) ReadBytes() int64 { return c.ioRd.Load() }

// CachedBytes returns the bytes served from caches.
func (c *Collector) CachedBytes() int64 { return c.ioCh.Load() }

// ReadRateMBps returns the average device read rate over the activity
// period in MB/s, the statistic reported as "Avg. Read Rate (MB/s)".
func (c *Collector) ReadRateMBps() float64 {
	w := c.Wall().Seconds()
	if w <= 0 {
		return 0
	}
	return float64(c.ioRd.Load()) / (1 << 20) / w
}

// Breakdown returns a copy of the per-category busy times.
func (c *Collector) Breakdown() map[Category]time.Duration {
	m := make(map[Category]time.Duration, numCategories)
	for _, cat := range Categories() {
		m[cat] = c.Busy(cat)
	}
	return m
}

// Reset zeroes all accumulated state.
func (c *Collector) Reset() {
	for i := range c.busy {
		c.busy[i].Store(0)
	}
	c.ioRd.Store(0)
	c.ioCh.Store(0)
	c.start.Store(0)
	c.end.Store(0)
}

// String formats the collector like the measurement tables under the
// paper's figures.
func (c *Collector) String() string {
	return fmt.Sprintf("cores=%.2f readMBps=%.2f busy=%v wall=%v",
		c.CoresUsed(), c.ReadRateMBps(), c.TotalBusy().Round(time.Millisecond), c.Wall().Round(time.Millisecond))
}

// Counter is a named atomic event counter (e.g. SP sharing opportunities
// per join position, the table under Figure 15).
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Store sets the value.
func (c *Counter) Store(n int64) { c.v.Store(n) }

// Max raises the value to n if n is larger — a concurrent high-water
// mark (e.g. the worst per-reader lag observed on a shared scan).
func (c *Counter) Max(n int64) {
	for {
		cur := c.v.Load()
		if n <= cur || c.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// CounterSet is a concurrent map of named counters.
type CounterSet struct {
	mu sync.Mutex
	m  map[string]*Counter
}

// NewCounterSet returns an empty counter set.
func NewCounterSet() *CounterSet {
	return &CounterSet{m: make(map[string]*Counter)}
}

// Get returns the counter named name, creating it if needed.
func (s *CounterSet) Get(name string) *Counter {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.m[name]
	if !ok {
		c = &Counter{}
		s.m[name] = c
	}
	return c
}

// Snapshot returns a copy of all counters' current values.
func (s *CounterSet) Snapshot() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.m))
	for k, v := range s.m {
		out[k] = v.Load()
	}
	return out
}

// Names returns the counter names in sorted order.
func (s *CounterSet) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.m))
	for k := range s.m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
