package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestCategoryString(t *testing.T) {
	want := map[Category]string{
		Hashing: "Hashing", Joins: "Joins", Aggregation: "Aggreg.",
		Scans: "Scans", Locks: "Locks", Misc: "Misc",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("Category(%d).String() = %q, want %q", int(c), c.String(), s)
		}
	}
	if got := Category(99).String(); got != "Category(99)" {
		t.Errorf("unknown category = %q", got)
	}
}

func TestCategoriesOrder(t *testing.T) {
	cats := Categories()
	if len(cats) != int(numCategories) {
		t.Fatalf("Categories() has %d entries, want %d", len(cats), numCategories)
	}
	if cats[0] != Hashing || cats[len(cats)-1] != Misc {
		t.Errorf("unexpected order: %v", cats)
	}
}

func TestCollectorAddAndBusy(t *testing.T) {
	var c Collector
	c.Add(Hashing, 100*time.Millisecond)
	c.Add(Hashing, 50*time.Millisecond)
	c.Add(Joins, 25*time.Millisecond)
	if got := c.Busy(Hashing); got != 150*time.Millisecond {
		t.Errorf("Busy(Hashing) = %v, want 150ms", got)
	}
	if got := c.TotalBusy(); got != 175*time.Millisecond {
		t.Errorf("TotalBusy = %v, want 175ms", got)
	}
}

func TestCollectorNilSafe(t *testing.T) {
	var c *Collector
	c.Add(Hashing, time.Second) // must not panic
	c.AddIORead(10)
	c.AddIOCached(10)
	c.Timer(Misc)()
}

func TestCollectorTimer(t *testing.T) {
	var c Collector
	stop := c.Timer(Scans)
	time.Sleep(5 * time.Millisecond)
	stop()
	if got := c.Busy(Scans); got < 4*time.Millisecond {
		t.Errorf("Timer accrued %v, want >= ~5ms", got)
	}
}

func TestCoresUsed(t *testing.T) {
	var c Collector
	c.Start()
	time.Sleep(10 * time.Millisecond)
	c.Stop()
	// Fake 4 cores busy for the whole window.
	c.Add(Misc, 4*c.Wall())
	got := c.CoresUsed()
	if got < 3.5 || got > 4.5 {
		t.Errorf("CoresUsed = %v, want ~4", got)
	}
}

func TestCoresUsedBeforeStart(t *testing.T) {
	var c Collector
	if got := c.CoresUsed(); got != 0 {
		t.Errorf("CoresUsed before Start = %v, want 0", got)
	}
	if got := c.Wall(); got != 0 {
		t.Errorf("Wall before Start = %v, want 0", got)
	}
}

func TestReadRate(t *testing.T) {
	var c Collector
	c.Start()
	time.Sleep(10 * time.Millisecond)
	c.AddIORead(10 << 20)
	c.AddIOCached(5 << 20)
	c.Stop()
	rate := c.ReadRateMBps()
	if rate <= 0 {
		t.Errorf("ReadRateMBps = %v, want > 0", rate)
	}
	if c.ReadBytes() != 10<<20 {
		t.Errorf("ReadBytes = %d, want %d", c.ReadBytes(), 10<<20)
	}
	if c.CachedBytes() != 5<<20 {
		t.Errorf("CachedBytes = %d, want %d", c.CachedBytes(), 5<<20)
	}
}

func TestCollectorConcurrent(t *testing.T) {
	var c Collector
	var wg sync.WaitGroup
	const n = 64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Add(Joins, time.Microsecond)
				c.AddIORead(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Busy(Joins); got != n*100*time.Microsecond {
		t.Errorf("concurrent Busy = %v, want %v", got, n*100*time.Microsecond)
	}
	if got := c.ReadBytes(); got != n*100 {
		t.Errorf("concurrent ReadBytes = %d, want %d", got, n*100)
	}
}

func TestCollectorReset(t *testing.T) {
	var c Collector
	c.Start()
	c.Add(Hashing, time.Second)
	c.AddIORead(123)
	c.Stop()
	c.Reset()
	if c.TotalBusy() != 0 || c.ReadBytes() != 0 || c.Wall() != 0 {
		t.Errorf("Reset left state: %v", c.String())
	}
}

func TestBreakdown(t *testing.T) {
	var c Collector
	c.Add(Hashing, time.Second)
	c.Add(Locks, 2*time.Second)
	b := c.Breakdown()
	if b[Hashing] != time.Second || b[Locks] != 2*time.Second || b[Misc] != 0 {
		t.Errorf("Breakdown = %v", b)
	}
	if len(b) != int(numCategories) {
		t.Errorf("Breakdown has %d categories, want %d", len(b), numCategories)
	}
}

func TestCounterSet(t *testing.T) {
	s := NewCounterSet()
	s.Get("join1").Add(5)
	s.Get("join1").Inc()
	s.Get("join2").Inc()
	snap := s.Snapshot()
	if snap["join1"] != 6 || snap["join2"] != 1 {
		t.Errorf("Snapshot = %v", snap)
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "join1" || names[1] != "join2" {
		t.Errorf("Names = %v", names)
	}
}

func TestCounterSetConcurrent(t *testing.T) {
	s := NewCounterSet()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				s.Get("x").Inc()
			}
		}()
	}
	wg.Wait()
	if got := s.Get("x").Load(); got != 3200 {
		t.Errorf("counter = %d, want 3200", got)
	}
}

func TestCounterStore(t *testing.T) {
	var c Counter
	c.Store(42)
	if c.Load() != 42 {
		t.Errorf("Load = %d, want 42", c.Load())
	}
}

func TestCollectorString(t *testing.T) {
	var c Collector
	c.Start()
	c.Stop()
	if s := c.String(); s == "" {
		t.Error("String() empty")
	}
}
