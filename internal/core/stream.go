package core

import (
	"context"
	"errors"
	"fmt"

	"sharedq/internal/pages"
	"sharedq/internal/plan"
)

// Rows is a streaming result cursor, the engine's native result
// surface. Iterate with Next/Scan (or Next/Row), check Err after the
// loop, and always Close. A plain projection delivers its first rows
// while the scan is still running; aggregates and sorted queries block
// until their single final chunk exists. Chunks are freshly
// materialized rows — never pooled batches — so a cursor abandoned
// mid-stream leaks nothing once Close runs: Close cancels the query's
// context, which detaches it from shared scans, retracts its CJOIN
// admission window and releases every pooled batch the pipeline holds.
//
// A Rows is not safe for concurrent use.
type Rows struct {
	schema *pages.Schema
	ch     chan []pages.Row
	done   chan struct{}
	err    error // producer's verdict; readable only after done closes
	cancel context.CancelFunc

	cur    []pages.Row
	idx    int
	rerr   error
	closed bool
}

// Stream parses, plans and executes sql under ctx, returning a cursor
// over the result. Admission control runs synchronously: an engine at
// its overload limits sheds here — the returned error tests true
// against ErrOverloaded and the query never started.
func (e *Engine) Stream(ctx context.Context, sql string) (*Rows, error) {
	q, err := e.Plan(sql)
	if err != nil {
		return nil, err
	}
	return e.StreamSubmit(ctx, q)
}

// StreamSubmit executes a planned query under ctx, returning a cursor
// over the result (see Stream).
func (e *Engine) StreamSubmit(ctx context.Context, q *plan.Query) (*Rows, error) {
	if err := e.begin(); err != nil {
		return nil, err
	}
	qctx, cancel := e.queryContext(ctx)
	if err := e.admit(qctx); err != nil {
		cancel()
		e.end()
		return nil, err
	}
	// A context already dead at submission fails fast: the query never
	// starts, matching the admission contract.
	if err := qctx.Err(); err != nil {
		e.release()
		cancel()
		e.end()
		return nil, err
	}
	r := &Rows{
		schema: q.OutputSchema,
		ch:     make(chan []pages.Row, 2),
		done:   make(chan struct{}),
		cancel: cancel,
		idx:    -1,
	}
	go func() {
		r.err = e.submitStream(qctx, q, func(rows []pages.Row) error {
			select {
			case r.ch <- rows:
				return nil
			case <-qctx.Done():
				return qctx.Err()
			}
		})
		close(r.done)
		e.release()
		cancel()
		e.end()
	}()
	return r, nil
}

// Next advances the cursor to the next row, blocking until one is
// available. It returns false at end of stream or on error; check Err
// to tell the two apart.
func (r *Rows) Next() bool {
	if r.closed || r.rerr != nil {
		return false
	}
	if r.idx+1 < len(r.cur) {
		r.idx++
		return true
	}
	for {
		select {
		case chunk := <-r.ch:
			if len(chunk) == 0 {
				continue
			}
			r.cur, r.idx = chunk, 0
			return true
		case <-r.done:
			// The producer is finished; consume chunks it buffered
			// before exiting, then surface its verdict.
			select {
			case chunk := <-r.ch:
				if len(chunk) == 0 {
					continue
				}
				r.cur, r.idx = chunk, 0
				return true
			default:
				r.rerr = r.err
				r.closed = true
				return false
			}
		}
	}
}

// Row returns the current row. Valid only after a true Next; the
// returned slice is owned by the caller.
func (r *Rows) Row() pages.Row {
	if r.idx < 0 || r.idx >= len(r.cur) {
		return nil
	}
	return r.cur[r.idx]
}

// Scan copies the current row's values into dst. Each destination may
// be *int64, *float64, *string, *pages.Value or *any.
func (r *Rows) Scan(dst ...any) error {
	row := r.Row()
	if row == nil {
		return errors.New("core: Scan called without a successful Next")
	}
	if len(dst) != len(row) {
		return fmt.Errorf("core: Scan expects %d destinations, got %d", len(row), len(dst))
	}
	for i, d := range dst {
		v := row[i]
		switch p := d.(type) {
		case *int64:
			if v.Kind != pages.KindInt {
				return fmt.Errorf("core: Scan column %d is not an int", i)
			}
			*p = v.I
		case *float64:
			switch v.Kind {
			case pages.KindFloat:
				*p = v.F
			case pages.KindInt:
				*p = float64(v.I)
			default:
				return fmt.Errorf("core: Scan column %d is not numeric", i)
			}
		case *string:
			if v.Kind != pages.KindString {
				return fmt.Errorf("core: Scan column %d is not a string", i)
			}
			*p = v.S
		case *pages.Value:
			*p = v
		case *any:
			switch v.Kind {
			case pages.KindInt:
				*p = v.I
			case pages.KindFloat:
				*p = v.F
			default:
				*p = v.S
			}
		default:
			return fmt.Errorf("core: Scan destination %d has unsupported type %T", i, d)
		}
	}
	return nil
}

// Err returns the error that terminated iteration, if any. A cursor
// closed deliberately before exhaustion reports nil.
func (r *Rows) Err() error { return r.rerr }

// Schema describes the result columns.
func (r *Rows) Schema() *pages.Schema { return r.schema }

// Close releases the cursor. If the query is still running it is
// cancelled — shared-scan detach, CJOIN window retraction and pool
// releases all happen before Close returns, so a leak check passes
// immediately after. Closing an exhausted or already-closed cursor is a
// no-op. Safe to defer unconditionally.
func (r *Rows) Close() error {
	if r.closed {
		r.closed = true
		r.cancel() // idempotent; frees context resources on early paths
		return r.rerr
	}
	r.closed = true
	r.cancel()
	for {
		select {
		case <-r.ch:
			// Discard chunks so a blocked producer can observe the
			// cancellation and exit.
		case <-r.done:
			for {
				select {
				case <-r.ch:
				default:
					// The producer's context.Canceled is the echo of our
					// own cancel — not an error the caller caused.
					if r.err != nil && !errors.Is(r.err, context.Canceled) && r.rerr == nil {
						r.rerr = r.err
					}
					return r.rerr
				}
			}
		}
	}
}

// Collect drains the remaining rows and closes the cursor.
func (r *Rows) Collect() ([]pages.Row, error) {
	var out []pages.Row
	for r.Next() {
		out = append(out, r.Row())
	}
	err := r.Err()
	if cerr := r.Close(); err == nil {
		err = cerr
	}
	return out, err
}
