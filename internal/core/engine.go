package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"sharedq/internal/cjoin"
	"sharedq/internal/exec"
	"sharedq/internal/pages"
	"sharedq/internal/plan"
	"sharedq/internal/qpipe"
)

// ErrClosed is returned by Submit/Query once the engine has begun
// shutting down: a closed engine admits no new queries.
var ErrClosed = errors.New("core: engine is closed")

// ErrOverloaded is returned when admission control sheds a query: the
// engine is at Options.MaxInFlight (with OverloadQueue off) or the
// batch pool's live memory exceeds Options.MaxPoolBytes. It is
// retryable — the engine is healthy, just saturated; back off and
// resubmit. Test with errors.Is.
var ErrOverloaded = errors.New("core: engine overloaded, retry later")

// Mode selects one of the execution-engine configurations under
// comparison (§5.1).
type Mode int

// Engine configurations. The zero value is Baseline.
const (
	Baseline Mode = iota
	QPipe
	QPipeCS
	QPipeSP
	CJOIN
	CJOINSP
)

// String returns the configuration name as the figures label it.
func (m Mode) String() string {
	switch m {
	case Baseline:
		return "Baseline"
	case QPipe:
		return "QPipe"
	case QPipeCS:
		return "QPipe-CS"
	case QPipeSP:
		return "QPipe-SP"
	case CJOIN:
		return "CJOIN"
	case CJOINSP:
		return "CJOIN-SP"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Modes lists all configurations in presentation order.
func Modes() []Mode { return []Mode{Baseline, QPipe, QPipeCS, QPipeSP, CJOIN, CJOINSP} }

// ParseMode resolves a configuration name ("qpipe-sp", "CJOIN", ...).
func ParseMode(name string) (Mode, error) {
	for _, m := range Modes() {
		if equalFold(m.String(), name) {
			return m, nil
		}
	}
	return 0, fmt.Errorf("core: unknown mode %q", name)
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// Options tunes an Engine beyond its Mode.
type Options struct {
	Mode Mode
	// Comm selects the communication model (default CommSPL, the
	// paper's optimized pull-based SP; CommFIFO reproduces the original
	// push-based design of Fig 6a).
	Comm qpipe.Comm
	// SPLMaxPages / FIFOCap bound the exchange buffers (default 8
	// pages = 256 KB of 32 KB pages).
	SPLMaxPages int
	FIFOCap     int
	// PageRows overrides rows per exchanged page.
	PageRows int
	// ShareResults additionally enables top-level SP for fully
	// identical plans in the QPipe modes (§3.1 "Identical queries").
	// Off by default, matching the paper's experimental methodology.
	ShareResults bool
	// CJOINPipelineThreads / CJOINDistributorParts tune the CJOIN
	// stage (see cjoin.Config).
	CJOINPipelineThreads  int
	CJOINDistributorParts int
	// Parallelism is the intra-query worker count: morsel-driven
	// parallel fact pipelines in Baseline execution, parallel page
	// fetch in the QPipe scan stage, and the number of partitioned
	// CJOIN preprocessor scanners. 0 selects runtime.GOMAXPROCS(0)
	// (all schedulable cores — runtime.NumCPU() unless overridden);
	// 1 forces the single-threaded paths.
	Parallelism int
	// MorselPages is the number of fact pages per morsel claim for
	// parallel execution (0 selects exec.MorselPages, currently 4).
	// Smaller morsels balance better under skew; larger ones amortize
	// the claim CAS.
	MorselPages int
	// StragglerLagPages bounds how far one shared-scan reader may fall
	// behind the scan head before it is detached from the convoy and
	// migrated to a private scan (QPipe circular scans) or retracted
	// and resubmitted privately (CJOIN). The detached query still
	// returns bit-identical results; the remaining convoy regains full
	// speed. 0 disables detachment (a slow reader stalls the convoy,
	// the pre-detach behavior); values below the exchange-buffer bound
	// are rounded up to it.
	StragglerLagPages int
	// MaxInFlight bounds the number of queries executing concurrently —
	// the overload valve. 0 means unbounded. A submission beyond the
	// bound is shed immediately with ErrOverloaded, or, with
	// OverloadQueue set, waits for a slot (bounded by the query's
	// context deadline and the engine's DefaultTimeout). Shed
	// submissions count in the system's admission_shed counter.
	MaxInFlight int
	// OverloadQueue makes over-limit submissions wait for an execution
	// slot instead of failing fast: latency degrades before
	// availability. The wait respects the query context, so a deadline
	// or cancellation still bounds it.
	OverloadQueue bool
	// MaxPoolBytes sheds new queries (ErrOverloaded) while the batch
	// pool's live column storage (vec.Pool.LiveBytes) exceeds it — the
	// memory ceiling that turns would-be OOM into backpressure. 0 means
	// no ceiling. Queries already admitted are never interrupted by it.
	MaxPoolBytes int64
	// DefaultTimeout bounds every query submitted to the engine: a
	// query that has not completed within it is cancelled and returns
	// context.DeadlineExceeded. It composes with (never extends) any
	// deadline already on the caller's context. 0 disables the bound —
	// callers pass their own deadline through QueryCtx/SubmitCtx.
	DefaultTimeout time.Duration
}

// Engine executes queries under one configuration. All methods are
// safe for concurrent use; concurrent Submits are where sharing
// happens.
type Engine struct {
	sys  *System
	env  *exec.Env // sys.Env with the engine's parallelism applied
	opts Options
	qp   *qpipe.Engine // nil in Baseline mode
	cj   *cjoin.Stage  // non-nil in CJOIN/CJOINSP modes
	sem  chan struct{} // execution slots when MaxInFlight > 0

	// Lifecycle state: SubmitCtx registers in-flight queries so Close
	// can drain them, and baseCtx is the engine-lifetime context whose
	// cancellation (Shutdown's forced phase) aborts every one of them.
	lcMu       sync.Mutex
	lcCond     *sync.Cond
	inflight   int
	closed     bool
	baseCtx    context.Context
	baseCancel context.CancelFunc
}

// NewEngine builds an engine over sys.
func NewEngine(sys *System, opts Options) *Engine {
	e := &Engine{sys: sys, env: sys.Env, opts: opts}
	if opts.MaxInFlight > 0 {
		e.sem = make(chan struct{}, opts.MaxInFlight)
	}
	e.lcCond = sync.NewCond(&e.lcMu)
	e.baseCtx, e.baseCancel = context.WithCancel(context.Background())
	if opts.Parallelism != 0 || opts.MorselPages != 0 {
		// Shallow copy: same substrate, caches and pool, but this
		// engine's parallelism and morsel knobs.
		env := *sys.Env
		if opts.Parallelism != 0 {
			env.Parallelism = opts.Parallelism
		}
		env.MorselPages = opts.MorselPages
		e.env = &env
	}
	qcfg := qpipe.Config{
		Comm:              opts.Comm,
		SPLMaxPages:       opts.SPLMaxPages,
		FIFOCap:           opts.FIFOCap,
		PageRows:          opts.PageRows,
		ShareResults:      opts.ShareResults,
		StragglerLagPages: opts.StragglerLagPages,
	}
	switch opts.Mode {
	case Baseline:
		// no engine state: volcano per query
	case QPipe:
		e.qp = qpipe.New(e.env, qcfg)
	case QPipeCS:
		qcfg.ShareScan = true
		e.qp = qpipe.New(e.env, qcfg)
	case QPipeSP:
		qcfg.ShareScan = true
		qcfg.ShareJoin = true
		e.qp = qpipe.New(e.env, qcfg)
	case CJOIN, CJOINSP:
		// Non-star queries fall back to circular-scan QPipe.
		qcfg.ShareScan = true
		e.qp = qpipe.New(e.env, qcfg)
		e.cj = cjoin.NewStage(e.env, cjoin.Config{
			PipelineThreads:   opts.CJOINPipelineThreads,
			DistributorParts:  opts.CJOINDistributorParts,
			ScanPartitions:    opts.Parallelism,
			SP:                opts.Mode == CJOINSP,
			StragglerLagPages: opts.StragglerLagPages,
			Ports: qpipe.PortConfig{
				Model:    opts.Comm,
				SPLMax:   opts.SPLMaxPages,
				FIFOCap:  opts.FIFOCap,
				PageRows: opts.PageRows,
				Col:      sys.Col,
			},
		})
	}
	return e
}

// Mode returns the engine's configuration.
func (e *Engine) Mode() Mode { return e.opts.Mode }

// System returns the substrate the engine runs on.
func (e *Engine) System() *System { return e.sys }

// Close shuts the engine down gracefully: it stops admitting new
// queries (later submissions return ErrClosed), waits for every
// in-flight query to complete, then tears down the CJOIN pipeline and
// the QPipe scan machinery. Queries the caller will not wait for
// should be cancelled through their contexts (or use Shutdown with a
// deadline). Safe to call more than once.
func (e *Engine) Close() { _ = e.Shutdown(context.Background()) }

// Shutdown drains the engine like Close, bounded by ctx: if the drain
// has not finished when ctx is done, every remaining in-flight query
// is cancelled (it returns context.Canceled to its submitter) and
// Shutdown waits for the unwind before tearing the stages down. It
// returns ctx.Err() when the forced phase was needed, nil for a clean
// drain.
func (e *Engine) Shutdown(ctx context.Context) error {
	e.lcMu.Lock()
	e.closed = true
	// When ctx fires mid-drain, cancel the engine-lifetime context:
	// every in-flight query's context is derived from it, so they all
	// unblock, release their batches and return to their submitters.
	forced := false
	stopWatch := context.AfterFunc(ctx, func() {
		e.lcMu.Lock()
		if e.inflight > 0 {
			forced = true
		}
		e.lcMu.Unlock()
		e.baseCancel()
	})
	for e.inflight > 0 {
		e.lcCond.Wait()
	}
	e.lcMu.Unlock()
	stopWatch()
	e.baseCancel() // the engine admits nothing anymore; free the context
	if e.cj != nil {
		e.cj.Close()
	}
	if e.qp != nil {
		e.qp.Close()
	}
	// The watcher may still be mid-run after a false Stop; forced is
	// read under the same lock it writes. A watcher that runs after
	// the drain finished observes inflight == 0 and leaves it false.
	e.lcMu.Lock()
	wasForced := forced
	e.lcMu.Unlock()
	if wasForced {
		return ctx.Err()
	}
	return nil
}

// begin registers an in-flight query; it fails once Close has started.
func (e *Engine) begin() error {
	e.lcMu.Lock()
	defer e.lcMu.Unlock()
	if e.closed {
		return ErrClosed
	}
	e.inflight++
	return nil
}

func (e *Engine) end() {
	e.lcMu.Lock()
	e.inflight--
	if e.inflight == 0 {
		e.lcCond.Broadcast()
	}
	e.lcMu.Unlock()
}

// queryContext derives the per-query context: the caller's, bounded by
// Options.DefaultTimeout when set, and cancelled when the engine's
// forced shutdown fires. The returned cancel must be called when the
// query finishes.
func (e *Engine) queryContext(ctx context.Context) (context.Context, context.CancelFunc) {
	var timeoutCancel context.CancelFunc
	if e.opts.DefaultTimeout > 0 {
		ctx, timeoutCancel = context.WithTimeout(ctx, e.opts.DefaultTimeout)
	}
	qctx, qcancel := context.WithCancel(ctx)
	stopWatch := context.AfterFunc(e.baseCtx, qcancel)
	return qctx, func() {
		stopWatch()
		qcancel()
		if timeoutCancel != nil {
			timeoutCancel()
		}
	}
}

// admit applies overload backpressure before a query executes: the
// pool memory ceiling sheds outright (memory pressure is global — a
// queue of waiters would only pile on), and the MaxInFlight valve
// sheds or queues per Options.OverloadQueue. A queued wait ends when a
// slot frees or qctx does (deadline, cancellation, forced shutdown).
func (e *Engine) admit(qctx context.Context) error {
	if max := e.opts.MaxPoolBytes; max > 0 && e.env.Recycle.LiveBytes() > max {
		e.sys.Robust.Get("admission_shed").Inc()
		return ErrOverloaded
	}
	if e.sem == nil {
		return nil
	}
	if e.opts.OverloadQueue {
		select {
		case e.sem <- struct{}{}:
			return nil
		case <-qctx.Done():
			return qctx.Err()
		}
	}
	select {
	case e.sem <- struct{}{}:
		return nil
	default:
		e.sys.Robust.Get("admission_shed").Inc()
		return ErrOverloaded
	}
}

// release returns the admitted query's execution slot.
func (e *Engine) release() {
	if e.sem != nil {
		<-e.sem
	}
}

// Plan parses and plans a SQL string against the system catalog.
func (e *Engine) Plan(sql string) (*plan.Query, error) {
	return plan.Build(e.sys.Cat, sql)
}

// Query parses, plans and executes sql, returning the result rows and
// their schema.
func (e *Engine) Query(sql string) ([]pages.Row, *pages.Schema, error) {
	return e.QueryCtx(context.Background(), sql)
}

// QueryCtx parses, plans and executes sql under ctx: cancelling the
// context (or exceeding its deadline, or the engine's DefaultTimeout)
// aborts the query mid-flight — it detaches from shared scans, retracts
// its CJOIN admission window, releases every pooled batch it holds and
// returns ctx.Err().
func (e *Engine) QueryCtx(ctx context.Context, sql string) ([]pages.Row, *pages.Schema, error) {
	q, err := e.Plan(sql)
	if err != nil {
		return nil, nil, err
	}
	rows, err := e.SubmitCtx(ctx, q)
	if err != nil {
		return nil, nil, err
	}
	return rows, q.OutputSchema, nil
}

// Submit executes a planned query under the engine's configuration.
func (e *Engine) Submit(q *plan.Query) ([]pages.Row, error) {
	return e.SubmitCtx(context.Background(), q)
}

// SubmitCtx executes a planned query under ctx (see QueryCtx). It is a
// collect-all wrapper over the streaming core: the engine's native
// result delivery is incremental (see StreamSubmit), and SubmitCtx
// gathers the chunks into one slice.
func (e *Engine) SubmitCtx(ctx context.Context, q *plan.Query) ([]pages.Row, error) {
	if err := e.begin(); err != nil {
		return nil, err
	}
	defer e.end()
	qctx, cancel := e.queryContext(ctx)
	defer cancel()
	if err := e.admit(qctx); err != nil {
		return nil, err
	}
	defer e.release()
	var out []pages.Row
	if err := e.submitStream(qctx, q, exec.CollectSink(&out)); err != nil {
		return nil, err
	}
	return out, nil
}

// submitStream dispatches an admitted query to its mode's streaming
// entry point. The caller owns lifecycle (begin/end), context and
// admission; emit receives result chunks with slice ownership
// transferred (see exec.RowSink).
func (e *Engine) submitStream(qctx context.Context, q *plan.Query, emit exec.RowSink) error {
	switch {
	case e.opts.Mode == Baseline:
		return exec.ExecuteStreamCtx(qctx, e.env, q, emit)
	case e.cj != nil && q.IsStarJoinable():
		return e.cj.SubmitStreamCtx(qctx, q, emit)
	default:
		return e.qp.SubmitStreamCtx(qctx, q, emit)
	}
}

// Counters merges the sharing counters of the engine's stages: QPipe's
// scan/join counters and CJOIN's admission/sharing counters.
func (e *Engine) Counters() map[string]int64 {
	out := make(map[string]int64)
	if e.qp != nil {
		for k, v := range e.qp.Stats() {
			out[k] = v
		}
	}
	if e.cj != nil {
		for k, v := range e.cj.Stats() {
			out[k] = v
		}
		out["cjoin_admission_ms"] = e.cj.AdmissionTime().Milliseconds()
	}
	return out
}

// Stats is a point-in-time snapshot of an engine's observable state:
// the stage sharing counters plus the robustness counters, the batch
// pool's health, and the number of queries currently executing. It is
// the supported monitoring surface — a server exports exactly this.
type Stats struct {
	// Counters holds the sharing and robustness counters by name
	// (scan_attach, result_shared, cjoin_admitted, cjoin_pass,
	// admission_shed, panic_recovered, ...).
	Counters map[string]int64
	// PoolOutstanding is the number of pooled column batches currently
	// checked out; it returns to the baseline when no queries run, so a
	// nonzero idle value indicates a leak.
	PoolOutstanding int64
	// PoolLiveBytes is the live column storage held by checked-out
	// batches — what Options.MaxPoolBytes sheds against.
	PoolLiveBytes int64
	// InFlight is the number of queries admitted and not yet finished.
	InFlight int
}

// Stats snapshots the engine's counters, pool health and in-flight
// query count. Safe to call concurrently with running queries; the
// fields are individually consistent, not a single atomic cut.
func (e *Engine) Stats() Stats {
	c := e.Counters()
	for k, v := range e.sys.Robust.Snapshot() {
		c[k] = v
	}
	return Stats{
		Counters:        c,
		PoolOutstanding: e.env.Recycle.Outstanding(),
		PoolLiveBytes:   e.env.Recycle.LiveBytes(),
		InFlight:        e.InFlight(),
	}
}

// InFlight returns the number of queries currently registered with the
// engine (admitted or queued for admission).
func (e *Engine) InFlight() int {
	e.lcMu.Lock()
	n := e.inflight
	e.lcMu.Unlock()
	return n
}

// OnCircularPass registers fn to run at every circular-scan pass
// boundary of the CJOIN stage (see cjoin.Stage.OnPass). It is a no-op
// in modes without a CJOIN stage and returns false there; an admission
// controller uses the return to decide whether pass alignment is
// available at all.
func (e *Engine) OnCircularPass(fn func()) bool {
	if e.cj == nil {
		return false
	}
	e.cj.OnPass(fn)
	return true
}

// CJOINAdmissionTime returns the cumulative CJOIN admission time (zero
// for non-CJOIN modes) — the "CJOIN Admission" series of Fig 11.
func (e *Engine) CJOINAdmissionTime() (d int64) {
	if e.cj != nil {
		return int64(e.cj.AdmissionTime())
	}
	return 0
}
