package core

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"sharedq/internal/pages"
	"sharedq/internal/qpipe"
	"sharedq/internal/ssb"
)

func testSystem(t *testing.T) *System {
	t.Helper()
	sys, err := NewSystem(SystemConfig{SF: 0.0005, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(SystemConfig{}); err == nil {
		t.Error("SF=0 should fail")
	}
}

func TestNewSystemLoadsCatalog(t *testing.T) {
	sys := testSystem(t)
	fact, ok := sys.Cat.FactTable()
	if !ok || fact.NumRows == 0 || fact.NumPages == 0 {
		t.Fatalf("fact table not loaded: %+v", fact)
	}
	if len(sys.Cat.Names()) != 6 {
		t.Errorf("tables = %v", sys.Cat.Names())
	}
}

func TestModeStringAndParse(t *testing.T) {
	for _, m := range Modes() {
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMode(%s) = %v, %v", m, got, err)
		}
	}
	if _, err := ParseMode("nope"); err == nil {
		t.Error("unknown mode should fail")
	}
	if m, err := ParseMode("cjoin-sp"); err != nil || m != CJOINSP {
		t.Errorf("case-insensitive parse = %v, %v", m, err)
	}
}

// TestAllModesAgree is the system-level sharing-correctness invariant:
// every configuration must return identical results for the same query
// mix, sequentially and concurrently.
func TestAllModesAgree(t *testing.T) {
	sys := testSystem(t)
	rng := rand.New(rand.NewSource(17))
	sqls := []string{
		ssb.TPCHQ1(),
		ssb.Q11(rng),
		ssb.Q21(rng),
		ssb.Q32Selectivity(rng, 6, 6),
		ssb.Q32PoolPlan(3),
	}
	base := NewEngine(sys, Options{Mode: Baseline})
	wants := make([][]pages.Row, len(sqls))
	for i, sql := range sqls {
		rows, _, err := base.Query(sql)
		if err != nil {
			t.Fatal(err)
		}
		wants[i] = rows
	}
	for _, mode := range []Mode{QPipe, QPipeCS, QPipeSP, CJOIN, CJOINSP} {
		e := NewEngine(sys, Options{Mode: mode, Comm: qpipe.CommSPL})
		for i, sql := range sqls {
			rows, _, err := e.Query(sql)
			if err != nil {
				t.Fatalf("%s: %v", mode, err)
			}
			if !reflect.DeepEqual(rows, wants[i]) {
				t.Errorf("%s: query %d returned %d rows, baseline %d",
					mode, i, len(rows), len(wants[i]))
			}
		}
		e.Close()
	}
}

func TestAllModesAgreeConcurrent(t *testing.T) {
	sys := testSystem(t)
	rng := rand.New(rand.NewSource(23))
	const n = 9
	sqls := make([]string, n)
	for i := range sqls {
		sqls[i] = ssb.Q32Pool(rng, 3)
	}
	base := NewEngine(sys, Options{Mode: Baseline})
	wants := make([][]pages.Row, n)
	for i, sql := range sqls {
		rows, _, err := base.Query(sql)
		if err != nil {
			t.Fatal(err)
		}
		wants[i] = rows
	}
	for _, mode := range []Mode{QPipeSP, CJOIN, CJOINSP} {
		e := NewEngine(sys, Options{Mode: mode})
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				rows, _, err := e.Query(sqls[i])
				if err != nil {
					t.Errorf("%s: %v", mode, err)
					return
				}
				if !reflect.DeepEqual(rows, wants[i]) {
					t.Errorf("%s: concurrent query %d diverged", mode, i)
				}
			}(i)
		}
		wg.Wait()
		e.Close()
	}
}

func TestCJOINFallbackForNonStar(t *testing.T) {
	sys := testSystem(t)
	e := NewEngine(sys, Options{Mode: CJOIN})
	defer e.Close()
	base := NewEngine(sys, Options{Mode: Baseline})
	want, _, err := base.Query(ssb.TPCHQ1())
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := e.Query(ssb.TPCHQ1())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("non-star fallback diverged")
	}
}

func TestEngineStats(t *testing.T) {
	sys := testSystem(t)
	e := NewEngine(sys, Options{Mode: CJOINSP})
	defer e.Close()
	rng := rand.New(rand.NewSource(5))
	if _, _, err := e.Query(ssb.Q32(rng)); err != nil {
		t.Fatal(err)
	}
	s := e.Counters()
	if s["cjoin_admitted"] != 1 {
		t.Errorf("stats = %v", s)
	}
	if e.CJOINAdmissionTime() <= 0 {
		t.Error("admission time missing")
	}
}

func TestQueryReturnsSchema(t *testing.T) {
	sys := testSystem(t)
	e := NewEngine(sys, Options{Mode: Baseline})
	_, schema, err := e.Query("SELECT COUNT(*) AS n FROM lineorder")
	if err != nil {
		t.Fatal(err)
	}
	if schema.Len() != 1 || schema.Columns[0].Name != "n" {
		t.Errorf("schema = %v", schema)
	}
}

func TestQueryBadSQL(t *testing.T) {
	sys := testSystem(t)
	e := NewEngine(sys, Options{Mode: Baseline})
	if _, _, err := e.Query("SELEC x"); err == nil {
		t.Error("bad SQL should fail")
	}
}

func TestClearCachesAndResetMetrics(t *testing.T) {
	sys := testSystem(t)
	e := NewEngine(sys, Options{Mode: Baseline})
	if _, _, err := e.Query("SELECT COUNT(*) AS n FROM customer"); err != nil {
		t.Fatal(err)
	}
	sys.ClearCaches()
	sys.ResetMetrics()
	if sys.Col.TotalBusy() != 0 || sys.Dev.BytesRead() != 0 {
		t.Error("metrics not reset")
	}
	if sys.Cache.Len() != 0 {
		t.Error("cache not cleared")
	}
}

func TestPredictPushSP(t *testing.T) {
	w := 100 * time.Millisecond
	f := 10 * time.Millisecond
	// Low concurrency, enough cores: sharing should lose (Fig 6a/6c).
	if PredictPushSP(PushSPCost{PivotWork: w, ForwardPerConsumer: f, Consumers: 4, Cores: 24}) {
		t.Error("push sharing predicted beneficial at low concurrency")
	}
	// High concurrency, few cores: sharing should win.
	if !PredictPushSP(PushSPCost{PivotWork: w, ForwardPerConsumer: f, Consumers: 64, Cores: 4}) {
		t.Error("push sharing predicted harmful at high concurrency")
	}
	// Single consumer: nothing to share.
	if PredictPushSP(PushSPCost{PivotWork: w, ForwardPerConsumer: f, Consumers: 1, Cores: 1}) {
		t.Error("sharing with one consumer")
	}
	// Degenerate cores.
	if !PredictPushSP(PushSPCost{PivotWork: w, ForwardPerConsumer: time.Millisecond, Consumers: 16, Cores: 0}) {
		t.Error("cores=0 should clamp to 1")
	}
}

func TestPredictPushSPForwardDominates(t *testing.T) {
	// Forwarding cost so high that sharing never wins.
	w := 10 * time.Millisecond
	f := 100 * time.Millisecond
	if PredictPushSP(PushSPCost{PivotWork: w, ForwardPerConsumer: f, Consumers: 64, Cores: 2}) {
		t.Error("sharing predicted beneficial despite dominant forwarding cost")
	}
}

func TestAdviseRulesOfThumb(t *testing.T) {
	low := Advise(8, 24)
	if low.Mode != QPipeSP || !low.SharedScans {
		t.Errorf("low concurrency advice = %+v", low)
	}
	high := Advise(256, 24)
	if high.Mode != CJOINSP || !high.SharedScans {
		t.Errorf("high concurrency advice = %+v", high)
	}
}

func TestDirectIOToggle(t *testing.T) {
	sys, err := NewSystem(SystemConfig{SF: 0.0005, Seed: 3, DirectIO: true})
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(sys, Options{Mode: Baseline})
	if _, _, err := e.Query("SELECT COUNT(*) AS n FROM supplier"); err != nil {
		t.Fatal(err)
	}
	if sys.Cache.Len() != 0 {
		t.Error("direct I/O populated the FS cache")
	}
	sys.SetDirectIO(false)
	sys.Pool.Clear()        // force FS-cache traffic on the re-read
	sys.Env.Batches.Clear() // decoded batches would otherwise satisfy it
	if _, _, err := e.Query("SELECT COUNT(*) AS n FROM supplier"); err != nil {
		t.Fatal(err)
	}
	if sys.Cache.Len() == 0 {
		t.Error("cached I/O did not populate the FS cache")
	}
}

func TestDiskResidentSystem(t *testing.T) {
	sys, err := NewSystem(SystemConfig{
		SF: 0.0005, Seed: 3, DiskResident: true,
		BandwidthMBps: 100000, SeekTime: time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !sys.Dev.Timed() {
		t.Error("disk-resident system should time the device")
	}
	e := NewEngine(sys, Options{Mode: QPipeCS})
	rows, _, err := e.Query("SELECT COUNT(*) AS n FROM customer")
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0].I != sys.Cat.MustGet(ssb.TableCustomer).NumRows {
		t.Errorf("count = %v", rows[0][0])
	}
}

func TestPredictGQP(t *testing.T) {
	base := GQPCost{
		Cores:             24,
		FactScan:          100 * time.Millisecond,
		PerQueryWork:      50 * time.Millisecond,
		SharedWork:        200 * time.Millisecond,
		AdmissionPerQuery: 5 * time.Millisecond,
	}
	low := base
	low.Queries = 8 // fits the cores: one round of 150ms beats 340ms GQP
	if PredictGQP(low) {
		t.Error("GQP predicted beneficial at low concurrency")
	}
	high := base
	high.Queries = 256 // 11 rounds of 150ms = 1.65s vs 1.58s GQP
	if !PredictGQP(high) {
		t.Error("GQP predicted harmful at high concurrency")
	}
	if PredictGQP(GQPCost{Queries: 1}) {
		t.Error("single query should never use the GQP")
	}
	zero := base
	zero.Queries = 64
	zero.Cores = 0 // clamps to 1: 64 rounds, GQP clearly wins
	if !PredictGQP(zero) {
		t.Error("cores=0 should clamp to 1")
	}
}

func TestPredictGQPAdmissionDominates(t *testing.T) {
	c := GQPCost{
		Queries:           64,
		Cores:             4,
		FactScan:          10 * time.Millisecond,
		PerQueryWork:      time.Millisecond,
		SharedWork:        10 * time.Millisecond,
		AdmissionPerQuery: 50 * time.Millisecond, // pathological admission
	}
	if PredictGQP(c) {
		t.Error("GQP predicted beneficial despite dominant admission cost")
	}
}
