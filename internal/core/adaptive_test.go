package core

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"sharedq/internal/ssb"
)

func TestAdaptiveMatchesBaseline(t *testing.T) {
	sys := testSystem(t)
	rng := rand.New(rand.NewSource(41))
	sqls := []string{ssb.Q32(rng), ssb.Q11(rng), ssb.TPCHQ1()}
	base := NewEngine(sys, Options{Mode: Baseline})
	a := NewAdaptiveEngine(sys, 4, Options{})
	defer a.Close()
	for _, sql := range sqls {
		want, _, err := base.Query(sql)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := a.Query(sql)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("adaptive diverged on %q", sql[:30])
		}
	}
}

func TestAdaptiveRoutesLowConcurrencyToQueryCentric(t *testing.T) {
	sys := testSystem(t)
	a := NewAdaptiveEngine(sys, 8, Options{}) // threshold 8 cores
	defer a.Close()
	rng := rand.New(rand.NewSource(42))
	// Sequential submissions: in-flight is always 1 <= 8.
	for i := 0; i < 3; i++ {
		if _, _, err := a.Query(ssb.Q32(rng)); err != nil {
			t.Fatal(err)
		}
	}
	qc, gqp := a.Routing()
	if qc != 3 || gqp != 0 {
		t.Errorf("routing = %d/%d, want 3/0", qc, gqp)
	}
}

func TestAdaptiveRoutesHighConcurrencyToGQP(t *testing.T) {
	sys := testSystem(t)
	a := NewAdaptiveEngine(sys, 1, Options{}) // threshold 1 core
	defer a.Close()
	rng := rand.New(rand.NewSource(43))
	const n = 6
	sqls := make([]string, n)
	for i := range sqls {
		sqls[i] = ssb.Q32Pool(rng, 2)
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, _, err := a.Query(sqls[i]); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	_, gqp := a.Routing()
	if gqp == 0 {
		t.Error("no queries routed to the GQP under saturation")
	}
}

func TestAdaptiveNonStarAlwaysQueryCentric(t *testing.T) {
	sys := testSystem(t)
	a := NewAdaptiveEngine(sys, 1, Options{})
	defer a.Close()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := a.Query(ssb.TPCHQ1()); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	_, gqp := a.Routing()
	if gqp != 0 {
		t.Errorf("non-star queries routed to GQP: %d", gqp)
	}
}

func TestAdaptiveBadSQL(t *testing.T) {
	sys := testSystem(t)
	a := NewAdaptiveEngine(sys, 0, Options{})
	defer a.Close()
	if _, _, err := a.Query("SELEC"); err == nil {
		t.Error("bad SQL should fail")
	}
}

// TestAdaptiveRoutesIdleSystemToParallelQueryCentric pins the new
// intra-query-parallelism arm: with workers configured and nothing else
// in flight, a star query runs on the morsel-parallel query-centric
// executor, and its results stay baseline-identical.
func TestAdaptiveRoutesIdleSystemToParallelQueryCentric(t *testing.T) {
	sys := testSystem(t)
	base := NewEngine(sys, Options{Mode: Baseline, Parallelism: 1})
	a := NewAdaptiveEngine(sys, 8, Options{Parallelism: 4})
	defer a.Close()
	rng := rand.New(rand.NewSource(44))
	for i := 0; i < 3; i++ {
		sql := ssb.Q32(rng)
		want, _, err := base.Query(sql)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := a.Query(sql)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("parallel query-centric arm diverged on %q", sql[:30])
		}
	}
	par, staged, gqp := a.RoutingDetail()
	if par != 3 {
		t.Errorf("routing detail = %d/%d/%d, want 3 morsel-parallel", par, staged, gqp)
	}
	if qc, g := a.Routing(); qc != 3 || g != 0 {
		t.Errorf("routing = %d/%d, want 3/0", qc, g)
	}
}
