package core

import (
	"testing"

	"sharedq/internal/leakcheck"
)

// TestMain is the package's goroutine-leak gate: an Engine that leaves
// scanners, join packets or CJOIN pipeline workers running after Close
// fails the build.
func TestMain(m *testing.M) { leakcheck.Main(m) }
