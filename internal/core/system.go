// Package core is the library's top-level API. It assembles the
// storage substrate (simulated device, FS cache, buffer pool, catalog),
// loads workloads, and exposes the execution-engine configurations the
// paper compares:
//
//	Baseline  — volcano-style query-centric execution (the "Postgres"
//	            role of Fig 16: no sharing among in-progress queries)
//	QPipe     — staged engine, no sharing
//	QPipeCS   — + circular scans (SP at the table-scan stage)
//	QPipeSP   — + join-stage SP (common sub-plan sharing)
//	CJOIN     — global query plan with shared operators for star
//	            queries (non-star queries fall back to QPipeCS)
//	CJOINSP   — CJOIN with SP on the CJOIN stage (§3.3)
//
// plus the rules-of-thumb advisor (Table 1) and the push-SP prediction
// model of Johnson et al. [14] that Shared Pages Lists make unnecessary.
package core

import (
	"fmt"
	"time"

	"sharedq/internal/buffer"
	"sharedq/internal/catalog"
	"sharedq/internal/disk"
	"sharedq/internal/exec"
	"sharedq/internal/heap"
	"sharedq/internal/metrics"
	"sharedq/internal/ssb"
	"sharedq/internal/vec"
)

// SystemConfig describes the simulated machine and database.
type SystemConfig struct {
	// SF is the SSB scale factor (1.0 = nominal sizes). Fractional
	// values scale linearly. Required.
	SF float64
	// Seed makes data generation deterministic.
	Seed int64
	// Skew is the Zipfian theta for the fact table's foreign keys
	// (0 = uniform, the SSB spec; >= 1 concentrates references on a few
	// hot dimension rows and hot group keys — the skewed-workload
	// experiments). See ssb.Gen.Skew.
	Skew float64
	// DiskResident enables disk timing simulation (the paper's
	// disk-resident experiments); false models the RAM-drive setup.
	DiskResident bool
	// BandwidthMBps is the simulated device's sequential throughput
	// (default 200, approximating the paper's RAID-0 pair).
	BandwidthMBps float64
	// SeekTime is the simulated seek penalty (default 1ms).
	SeekTime time.Duration
	// PoolPages sizes the buffer pool (default 8192 pages = 256 MB).
	PoolPages int
	// CachePages sizes the simulated OS file cache (default 4096).
	CachePages int
	// ReadAhead is the FS cache read-ahead span in pages (default 32).
	ReadAhead int
	// DirectIO bypasses the FS cache (the Fig 13 direct-I/O runs).
	DirectIO bool
	// BufferPolicy selects the buffer pool's replacement strategy
	// (default clock; buffer.PolicyLRU for least-recently-used).
	BufferPolicy buffer.Policy
	// BatchCachePages bounds the decoded-batch cache, which lets
	// concurrent shared scans decode each page once (0 selects the
	// buffer pool size; negative disables the cache so every scan
	// decodes its own batches).
	BatchCachePages int
	// Compressed loads tables as compressed columnar pages (dictionary,
	// run-length and bit-packed encodings chosen per column at load
	// time) instead of slotted row pages. Query results are identical;
	// scans read fewer pages and predicates, joins and group-bys on
	// dictionary columns operate on codes (decode-late).
	Compressed bool
}

// System is an assembled storage substrate plus catalog and metrics:
// everything an Engine executes against.
type System struct {
	Cfg   SystemConfig
	Dev   *disk.Device
	Cache *disk.FSCache
	Pool  *buffer.Pool
	Cat   *catalog.Catalog
	Col   *metrics.Collector
	Env   *exec.Env
	// Guard is the storage-integrity policy every page read of this
	// system goes through: checksum verification, bounded read retries
	// with backoff, and quarantine of persistently corrupt pages (reads
	// of quarantined pages fail fast with heap.ErrCorruptPage).
	Guard *heap.Guard
	// Robust collects the fault-tolerance counters — page_retry,
	// page_quarantined, query_panic_recovered, admission_shed — shared
	// by the guard and every engine built on this system.
	Robust *metrics.CounterSet //sharedq:counters robust
}

// NewSystem builds the substrate and loads the SSB database (including
// the lineitem table for the TPC-H Q1 experiments).
func NewSystem(cfg SystemConfig) (*System, error) {
	if cfg.SF <= 0 {
		return nil, fmt.Errorf("core: SF must be positive, got %v", cfg.SF)
	}
	if cfg.PoolPages <= 0 {
		cfg.PoolPages = 8192
	}
	dev := disk.NewDevice(disk.Config{
		BandwidthMBps: cfg.BandwidthMBps,
		SeekTime:      cfg.SeekTime,
		Timed:         false, // loading is untimed; flipped below
	})
	cat := catalog.New()
	ssb.RegisterSchemas(cat)
	gen := ssb.Gen{SF: cfg.SF, Seed: cfg.Seed, Skew: cfg.Skew}
	var err error
	if cfg.Compressed {
		err = gen.LoadCompressed(dev, cat)
	} else {
		err = gen.Load(dev, cat)
	}
	if err != nil {
		return nil, err
	}
	dev.SetTimed(cfg.DiskResident)
	cache := disk.NewFSCache(dev, disk.CacheConfig{
		CapacityPages: cfg.CachePages,
		ReadAhead:     cfg.ReadAhead,
	})
	pool := buffer.NewPoolPolicy(cache, cfg.PoolPages, cfg.BufferPolicy)
	pool.SetDirectIO(cfg.DirectIO)
	col := &metrics.Collector{}
	var batches *heap.BatchCache
	if cfg.BatchCachePages >= 0 {
		n := cfg.BatchCachePages
		if n == 0 {
			n = cfg.PoolPages
		}
		batches = heap.NewBatchCache(n)
	}
	robust := metrics.NewCounterSet()
	guard := heap.NewGuard(robust)
	return &System{
		Cfg:    cfg,
		Dev:    dev,
		Cache:  cache,
		Pool:   pool,
		Cat:    cat,
		Col:    col,
		Env:    &exec.Env{Cat: cat, Pool: pool, Col: col, Batches: batches, Recycle: vec.NewPool(), Guard: guard},
		Guard:  guard,
		Robust: robust,
	}, nil
}

// ClearCaches drops the FS cache, evicts the buffer pool and empties
// the decoded-batch cache, modelling the paper's "we clear the file
// system caches before every measurement" plus a cold buffer pool.
func (s *System) ClearCaches() {
	s.Cache.Clear()
	s.Pool.Clear()
	s.Env.Batches.Clear()
}

// ResetMetrics zeroes the metrics collector and device statistics so a
// fresh measurement window can begin.
func (s *System) ResetMetrics() {
	s.Col.Reset()
	s.Dev.ResetStats()
	s.Pool.ResetStats()
}

// SetDirectIO toggles FS-cache bypass at run time (Fig 13 contrasts
// cached and direct I/O on the same database).
func (s *System) SetDirectIO(direct bool) { s.Pool.SetDirectIO(direct) }
