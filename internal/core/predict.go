package core

import (
	"time"
)

// This file implements the two decision aids discussed in the paper:
// the run-time prediction model for push-based SP proposed by Johnson
// et al. [14] (§4 recounts it; SPL makes it unnecessary), and the
// rules-of-thumb advisor of Table 1.

// PushSPCost summarizes the cost inputs of the [14] prediction model
// for one sharing decision at a pivot operator.
type PushSPCost struct {
	// PivotWork is the (estimated) work of evaluating the pivot
	// operator once.
	PivotWork time.Duration
	// ForwardPerConsumer is the cost of copying the pivot's results to
	// one satellite's FIFO — the serialization-point unit cost.
	ForwardPerConsumer time.Duration
	// Consumers is the number of queries that would share (host +
	// satellites).
	Consumers int
	// Cores is the number of available hardware contexts.
	Cores int
}

// PredictPushSP reports whether push-based sharing is predicted
// beneficial. Without sharing, the k queries evaluate the pivot
// independently and in parallel across the available cores:
//
//	T_noshare ≈ W · ceil(k / C)
//
// With push-based sharing, the host evaluates once and forwards
// serially to every satellite on its own thread:
//
//	T_share ≈ W + k·F
//
// Sharing wins when T_share < T_noshare. At low concurrency
// (k ≤ C) the right side is just W, so any forwarding cost makes
// sharing lose — the trade-off of Fig 6a. Pull-based SPL removes the
// k·F term entirely, which is why the paper discards the prediction
// model once SPL is in place.
func PredictPushSP(c PushSPCost) bool {
	if c.Consumers <= 1 {
		return false
	}
	if c.Cores < 1 {
		c.Cores = 1
	}
	rounds := (c.Consumers + c.Cores - 1) / c.Cores
	noShare := c.PivotWork * time.Duration(rounds)
	share := c.PivotWork + time.Duration(c.Consumers)*c.ForwardPerConsumer
	return share < noShare
}

// Marginal returns the predicted marginal cost of attaching one more
// consumer to the shared pivot: the host's work is already paid, so
// the increment is one more forwarding step — the k·F term's
// derivative. An admission controller weighs this against the cost of
// running the newcomer stand-alone (PivotWork on a free core, or a
// whole extra round past saturation).
func (c PushSPCost) Marginal() time.Duration {
	return c.ForwardPerConsumer
}

// Advice is a Table 1 recommendation.
type Advice struct {
	// Engine configuration to prefer.
	Mode Mode
	// SharedScans is always true: the paper finds circular scans
	// beneficial at both low and high concurrency.
	SharedScans bool
	// Reason is a human-readable justification.
	Reason string
}

// Advise applies the paper's rules of thumb (Table 1): for typical
// OLAP workloads, use query-centric operators with SP while concurrency
// is below the hardware's saturation point, and a GQP with shared
// operators enhanced by SP beyond it. Shared scans apply throughout.
func Advise(concurrentQueries, cores int) Advice {
	if concurrentQueries > cores {
		return Advice{
			Mode:        CJOINSP,
			SharedScans: true,
			Reason: "high concurrency: shared operators amortize their bookkeeping " +
				"and reduce contention; SP removes redundant identical packets",
		}
	}
	return Advice{
		Mode:        QPipeSP,
		SharedScans: true,
		Reason: "low concurrency: query-centric operators avoid shared-operator " +
			"bookkeeping while SP (with SPL) shares common sub-plans at no cost",
	}
}

// GQPCost feeds the prediction model the paper sketches in §6 for
// shared operators: unlike the SP model (which shares identical
// results), a GQP "share[s] part of their evaluation among possibly
// different queries", so the decision must weigh the shared pipeline's
// bookkeeping and admission costs against query-centric parallelism.
type GQPCost struct {
	// Queries is the number of concurrent star queries in the mix.
	Queries int
	// Cores is the number of available hardware contexts.
	Cores int
	// FactScan is one pass over the fact table — paid once by the GQP,
	// once per query by the query-centric model (without shared scans).
	FactScan time.Duration
	// PerQueryWork is a query's unsharable work in the query-centric
	// model: its own probes and aggregation.
	PerQueryWork time.Duration
	// SharedWork is the shared pipeline's evaluation cost for the whole
	// mix: probing the union of selections plus the bitmap bookkeeping
	// that grows with the mix's union selectivity.
	SharedWork time.Duration
	// AdmissionPerQuery is the GQP's per-query admission cost: scanning
	// referenced dimensions, evaluating predicates, extending bitmaps,
	// stalling the pipeline (§3.1 costs a–e).
	AdmissionPerQuery time.Duration
}

// PredictGQP reports whether evaluating the mix on a GQP with shared
// operators is predicted faster than query-centric evaluation:
//
//	T_qc  ≈ ceil(n / C) · (FactScan + PerQueryWork)
//	T_gqp ≈ FactScan + SharedWork + n · Admission
//
// At low concurrency (n ≤ C) the query-centric side collapses to one
// round and the GQP's bookkeeping makes it lose — the Fig 11 regime;
// past saturation the shared side amortizes — the Fig 12 crossover.
func PredictGQP(c GQPCost) bool {
	if c.Queries <= 1 {
		return false
	}
	if c.Cores < 1 {
		c.Cores = 1
	}
	rounds := (c.Queries + c.Cores - 1) / c.Cores
	qc := time.Duration(rounds) * (c.FactScan + c.PerQueryWork)
	gqp := c.FactScan + c.SharedWork + time.Duration(c.Queries)*c.AdmissionPerQuery
	return gqp < qc
}

// Marginal returns the predicted cost of admitting one more query to
// the GQP — the derivative of T_gqp with respect to n: the per-query
// admission cost (dimension scans, bitmap extension, pipeline stall)
// plus the mix's shared work linearized per member (one more query
// widens the union of selections roughly by its share). The fact scan
// itself is already paid — that is the whole point of the GQP — so it
// does not appear. An admission controller sheds when this marginal
// cost, queued behind the work already admitted, would blow the
// newcomer's deadline.
func (c GQPCost) Marginal() time.Duration {
	m := c.AdmissionPerQuery
	if c.Queries > 0 {
		m += c.SharedWork / time.Duration(c.Queries)
	}
	return m
}

// PredictRetryAfter estimates how long a query shed now should wait
// before resubmitting: the time for the backlog ahead of it —
// everything executing plus everything queued — to drain through the
// available slots at the observed per-query service time.
//
//	retry ≈ avgService · ceil((inflight + queued) / slots)
//
// The estimate is deliberately on the high side for a healthy system
// (queries drain in parallel waves) — a shed client retrying late
// costs little; retrying early re-sheds and doubles the admission
// traffic the valve exists to remove.
func PredictRetryAfter(inflight, queued, slots int, avgService time.Duration) time.Duration {
	if slots < 1 {
		slots = 1
	}
	if avgService <= 0 {
		avgService = time.Millisecond
	}
	backlog := inflight + queued
	if backlog < 1 {
		backlog = 1
	}
	waves := (backlog + slots - 1) / slots
	return avgService * time.Duration(waves)
}
