package core

import (
	"context"
	"runtime"
	"sync/atomic"

	"sharedq/internal/pages"
	"sharedq/internal/plan"
)

// AdaptiveEngine operationalizes the paper's conclusion ("analytical
// query engines should dynamically choose between query-centric
// operators with intra-query parallelism [plus SP] for low concurrency
// and GQP with shared operators enhanced by SP for high concurrency"):
// it runs three strategies over the same system and routes each
// incoming star query by the current concurrency, per the Table 1
// rules of thumb. An otherwise-idle system gives the lone query the
// whole machine through the morsel-parallel query-centric executor; a
// busy-but-unsaturated system shares sub-plans on the QPipe-SP engine;
// a saturated one amortizes work on the CJOIN-SP global query plan.
// Non-star queries always run on the QPipe-SP engine.
type AdaptiveEngine struct {
	sys       *System
	par       *Engine // Baseline: morsel-parallel query-centric
	qp        *Engine // QPipeSP
	cj        *Engine // CJOINSP
	cores     int
	inflight  atomic.Int64
	routedPar atomic.Int64
	routedQP  atomic.Int64
	routedCJ  atomic.Int64
}

// NewAdaptiveEngine builds the three engines. cores sets the
// saturation threshold (0 = runtime.NumCPU()).
func NewAdaptiveEngine(sys *System, cores int, opts Options) *AdaptiveEngine {
	if cores <= 0 {
		cores = runtime.NumCPU()
	}
	parOpts, qpOpts, cjOpts := opts, opts, opts
	parOpts.Mode = Baseline
	qpOpts.Mode = QPipeSP
	cjOpts.Mode = CJOINSP
	return &AdaptiveEngine{
		sys:   sys,
		par:   NewEngine(sys, parOpts),
		qp:    NewEngine(sys, qpOpts),
		cj:    NewEngine(sys, cjOpts),
		cores: cores,
	}
}

// Close gracefully shuts all three engines down: each drains its
// in-flight queries before tearing down (see Engine.Close).
func (a *AdaptiveEngine) Close() {
	a.par.Close()
	a.qp.Close()
	a.cj.Close()
}

// Shutdown drains all three engines bounded by ctx (see
// Engine.Shutdown); the first context error, if any, is returned.
func (a *AdaptiveEngine) Shutdown(ctx context.Context) error {
	err := a.par.Shutdown(ctx)
	if e := a.qp.Shutdown(ctx); err == nil {
		err = e
	}
	if e := a.cj.Shutdown(ctx); err == nil {
		err = e
	}
	return err
}

// Submit routes the query: GQP when the system is saturated (in-flight
// queries exceed the core count), query-centric otherwise — with the
// morsel-parallel executor when this is the only query in flight (one
// query, all cores), the staged SP engine when concurrency can share.
func (a *AdaptiveEngine) Submit(q *plan.Query) ([]pages.Row, error) {
	return a.SubmitCtx(context.Background(), q)
}

// SubmitCtx routes like Submit, under a context (see Engine.QueryCtx
// for the cancellation semantics of each arm).
func (a *AdaptiveEngine) SubmitCtx(ctx context.Context, q *plan.Query) ([]pages.Row, error) {
	n := int(a.inflight.Add(1))
	defer a.inflight.Add(-1)
	if q.IsStarJoinable() {
		if Advise(n, a.cores).Mode == CJOINSP {
			a.routedCJ.Add(1)
			return a.cj.SubmitCtx(ctx, q)
		}
		// The morsel-parallel arm only pays off when there are workers
		// to fan out to; on a single-worker environment the staged
		// engine keeps its pipeline overlap.
		if n == 1 && a.par.env.Workers() > 1 {
			a.routedPar.Add(1)
			return a.par.SubmitCtx(ctx, q)
		}
	}
	a.routedQP.Add(1)
	return a.qp.SubmitCtx(ctx, q)
}

// Query parses, plans and executes sql adaptively.
func (a *AdaptiveEngine) Query(sql string) ([]pages.Row, *pages.Schema, error) {
	return a.QueryCtx(context.Background(), sql)
}

// QueryCtx parses, plans and executes sql adaptively under ctx.
func (a *AdaptiveEngine) QueryCtx(ctx context.Context, sql string) ([]pages.Row, *pages.Schema, error) {
	q, err := plan.Build(a.sys.Cat, sql)
	if err != nil {
		return nil, nil, err
	}
	rows, err := a.SubmitCtx(ctx, q)
	if err != nil {
		return nil, nil, err
	}
	return rows, q.OutputSchema, nil
}

// Routing reports how many queries went to each side of the paper's
// dichotomy: query-centric (morsel-parallel and staged-SP combined)
// versus the GQP.
func (a *AdaptiveEngine) Routing() (queryCentric, gqp int64) {
	return a.routedPar.Load() + a.routedQP.Load(), a.routedCJ.Load()
}

// RoutingDetail reports the per-strategy routing counts: the morsel-
// parallel query-centric executor, the staged QPipe-SP engine, and the
// CJOIN-SP global query plan.
func (a *AdaptiveEngine) RoutingDetail() (parallelQC, stagedQC, gqp int64) {
	return a.routedPar.Load(), a.routedQP.Load(), a.routedCJ.Load()
}
