package core

import (
	"runtime"
	"sync/atomic"

	"sharedq/internal/pages"
	"sharedq/internal/plan"
)

// AdaptiveEngine operationalizes the paper's conclusion ("analytical
// query engines should dynamically choose between query-centric
// operators with SP for low concurrency and GQP with shared operators
// enhanced by SP for high concurrency"): it runs a QPipe-SP engine and
// a CJOIN-SP engine over the same system and routes each incoming star
// query by the current concurrency, per the Table 1 rules of thumb.
// Non-star queries always run on the QPipe-SP engine.
type AdaptiveEngine struct {
	sys      *System
	qp       *Engine // QPipeSP
	cj       *Engine // CJOINSP
	cores    int
	inflight atomic.Int64
	routedQP atomic.Int64
	routedCJ atomic.Int64
}

// NewAdaptiveEngine builds the two engines. cores sets the saturation
// threshold (0 = runtime.NumCPU()).
func NewAdaptiveEngine(sys *System, cores int, opts Options) *AdaptiveEngine {
	if cores <= 0 {
		cores = runtime.NumCPU()
	}
	qpOpts, cjOpts := opts, opts
	qpOpts.Mode = QPipeSP
	cjOpts.Mode = CJOINSP
	return &AdaptiveEngine{
		sys:   sys,
		qp:    NewEngine(sys, qpOpts),
		cj:    NewEngine(sys, cjOpts),
		cores: cores,
	}
}

// Close releases both engines.
func (a *AdaptiveEngine) Close() {
	a.qp.Close()
	a.cj.Close()
}

// Submit routes the query: GQP when the system is saturated (in-flight
// queries exceed the core count), query-centric with SP otherwise.
func (a *AdaptiveEngine) Submit(q *plan.Query) ([]pages.Row, error) {
	n := int(a.inflight.Add(1))
	defer a.inflight.Add(-1)
	if q.IsStarJoinable() && Advise(n, a.cores).Mode == CJOINSP {
		a.routedCJ.Add(1)
		return a.cj.Submit(q)
	}
	a.routedQP.Add(1)
	return a.qp.Submit(q)
}

// Query parses, plans and executes sql adaptively.
func (a *AdaptiveEngine) Query(sql string) ([]pages.Row, *pages.Schema, error) {
	q, err := plan.Build(a.sys.Cat, sql)
	if err != nil {
		return nil, nil, err
	}
	rows, err := a.Submit(q)
	if err != nil {
		return nil, nil, err
	}
	return rows, q.OutputSchema, nil
}

// Routing reports how many queries each engine received.
func (a *AdaptiveEngine) Routing() (queryCentric, gqp int64) {
	return a.routedQP.Load(), a.routedCJ.Load()
}
