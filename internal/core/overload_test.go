package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"sharedq/internal/pages"
)

// slowSystem builds a system whose timed device makes a cold table
// scan take on the order of a second, so a test can observe a query
// mid-flight without sync hooks.
func slowSystem(t *testing.T) *System {
	t.Helper()
	sys, err := NewSystem(SystemConfig{
		SF: 0.002, Seed: 3, DiskResident: true,
		BandwidthMBps: 1, SeekTime: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestOverloadShed pins the fail-fast valve: with MaxInFlight=1 and no
// queue, a second concurrent query returns ErrOverloaded immediately
// (it does not wait behind the running one) and the shed is counted.
func TestOverloadShed(t *testing.T) {
	sys := slowSystem(t)
	e := NewEngine(sys, Options{Mode: Baseline, MaxInFlight: 1})
	defer e.Close()

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, _ = e.QueryCtx(ctx, "SELECT COUNT(*) AS n FROM lineorder")
	}()
	time.Sleep(100 * time.Millisecond) // the cold scan runs ~1s on the timed device

	start := time.Now()
	_, _, err := e.Query("SELECT COUNT(*) AS n FROM customer")
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second query error = %v; want ErrOverloaded", err)
	}
	if d := time.Since(start); d > 500*time.Millisecond {
		t.Errorf("shed took %v; want immediate", d)
	}
	if n := sys.Robust.Get("admission_shed").Load(); n != 1 {
		t.Errorf("admission_shed = %d, want 1", n)
	}
	cancel()
	wg.Wait()

	// The valve frees with the slot: after the first query unwinds, the
	// engine admits again.
	if _, _, err := e.Query("SELECT COUNT(*) AS n FROM customer"); err != nil {
		t.Fatalf("query after shed failed: %v", err)
	}
}

// TestOverloadQueue pins the queue-instead-of-shed choice: N queries
// through a 2-slot engine all succeed, none shed, and the queued wait
// still respects the waiter's context deadline.
func TestOverloadQueue(t *testing.T) {
	sys := testSystem(t)
	e := NewEngine(sys, Options{Mode: Baseline, MaxInFlight: 2, OverloadQueue: true})
	defer e.Close()

	var wg sync.WaitGroup
	errs := make([]error, 8)
	rows := make([][]pages.Row, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rows[i], _, errs[i] = e.Query("SELECT COUNT(*) AS n FROM lineorder")
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("queued query %d: %v", i, err)
		}
		if len(rows[i]) != 1 {
			t.Fatalf("queued query %d returned %d rows", i, len(rows[i]))
		}
	}
	if n := sys.Robust.Get("admission_shed").Load(); n != 0 {
		t.Errorf("admission_shed = %d, want 0 with queueing", n)
	}
}

// TestOverloadQueueDeadline pins that a queued waiter is bounded by its
// context: with the only slot held, a waiter with a short deadline
// returns context.DeadlineExceeded instead of waiting forever.
func TestOverloadQueueDeadline(t *testing.T) {
	sys := slowSystem(t)
	e := NewEngine(sys, Options{Mode: Baseline, MaxInFlight: 1, OverloadQueue: true})
	defer e.Close()

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, _ = e.QueryCtx(ctx, "SELECT COUNT(*) AS n FROM lineorder")
	}()
	time.Sleep(100 * time.Millisecond)

	wctx, wcancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer wcancel()
	_, _, err := e.QueryCtx(wctx, "SELECT COUNT(*) AS n FROM customer")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued waiter error = %v; want DeadlineExceeded", err)
	}
	cancel()
	wg.Wait()
}

// TestOverloadPoolCeiling pins the memory ceiling: while the batch
// pool's live bytes exceed MaxPoolBytes, submissions shed with
// ErrOverloaded; once the memory is released, admission resumes.
func TestOverloadPoolCeiling(t *testing.T) {
	sys := testSystem(t)
	e := NewEngine(sys, Options{Mode: Baseline, MaxPoolBytes: 1})
	defer e.Close()

	// Hold pool memory the way an in-flight query would: a pre-sized
	// checkout charges its column capacity to the live gauge.
	b := sys.Env.Recycle.Get([]pages.Kind{pages.KindInt}, 4096)
	if sys.Env.Recycle.LiveBytes() <= 1 {
		t.Fatalf("LiveBytes = %d, want > 1", sys.Env.Recycle.LiveBytes())
	}
	if _, _, err := e.Query("SELECT COUNT(*) AS n FROM customer"); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-ceiling query error = %v; want ErrOverloaded", err)
	}
	if n := sys.Robust.Get("admission_shed").Load(); n == 0 {
		t.Error("admission_shed did not count the memory shed")
	}
	b.Release()
	if sys.Env.Recycle.LiveBytes() != 0 {
		t.Fatalf("LiveBytes = %d after release, want 0", sys.Env.Recycle.LiveBytes())
	}
	if _, _, err := e.Query("SELECT COUNT(*) AS n FROM customer"); err != nil {
		t.Fatalf("query after memory release failed: %v", err)
	}
}
