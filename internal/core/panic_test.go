package core

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"sharedq/internal/exec"
	"sharedq/internal/expr"
	"sharedq/internal/ssb"
)

// panicMagic is the fact-predicate literal the armed kernel fault keys
// on: any query whose predicate tree contains it panics on its first
// kernel invocation; every other query compiles and runs normally.
const panicMagic = 424242

func poisonedSQL() string {
	return fmt.Sprintf(`SELECT SUM(lo_revenue) AS revenue, d_year
FROM lineorder, date
WHERE lo_orderdate = d_datekey
  AND lo_quantity < %d
GROUP BY d_year
ORDER BY d_year ASC`, panicMagic)
}

// TestPanicContainmentAllModes is the per-query panic-containment
// invariant: in every configuration, a query whose kernel panics
// mid-flight fails with a typed *exec.PanicError while a concurrent
// query — possibly sharing the same scan, join or CJOIN window —
// returns exactly the rows it would have returned alone, and no pooled
// batch leaks.
func TestPanicContainmentAllModes(t *testing.T) {
	sys := testSystem(t)
	healthy := ssb.Q11(rand.New(rand.NewSource(7)))
	base := NewEngine(sys, Options{Mode: Baseline})
	want, _, err := base.Query(healthy)
	if err != nil {
		t.Fatal(err)
	}
	base.Close()

	for _, mode := range Modes() {
		for _, par := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/par%d", mode, par), func(t *testing.T) {
				e := NewEngine(sys, Options{Mode: mode, Parallelism: par})
				defer e.Close()
				expr.ArmKernelPanic(panicMagic)
				defer expr.DisarmKernelPanic()

				before := sys.Robust.Get("query_panic_recovered").Load()
				var wg sync.WaitGroup
				var perr error
				wg.Add(1)
				go func() {
					defer wg.Done()
					_, _, perr = e.Query(poisonedSQL())
				}()
				rows, _, herr := e.Query(healthy)
				wg.Wait()

				if herr != nil {
					t.Fatalf("healthy query failed alongside panicking one: %v", herr)
				}
				if !reflect.DeepEqual(rows, want) {
					t.Errorf("healthy query diverged: %d rows, want %d", len(rows), len(want))
				}
				if perr == nil {
					t.Fatal("poisoned query succeeded; want PanicError")
				}
				var pe *exec.PanicError
				if !errors.As(perr, &pe) {
					t.Fatalf("poisoned query error = %v; want *exec.PanicError", perr)
				}
				if len(pe.Stack) == 0 {
					t.Error("PanicError carries no stack")
				}
				if got := sys.Robust.Get("query_panic_recovered").Load(); got <= before {
					t.Error("query_panic_recovered counter did not advance")
				}
			})
		}
	}
	// Engines are closed per subtest; any batch still checked out now is
	// a leak from a contained panic.
	if n := sys.Env.Recycle.Outstanding(); n != 0 {
		t.Errorf("%d pooled batches leaked", n)
	}
}

// TestPanicContainmentRepeated pins that containment is not one-shot:
// an engine that has absorbed a panic keeps serving queries, and a
// second poisoned query is contained the same way.
func TestPanicContainmentRepeated(t *testing.T) {
	sys := testSystem(t)
	for _, mode := range []Mode{Baseline, QPipeSP, CJOINSP} {
		e := NewEngine(sys, Options{Mode: mode})
		expr.ArmKernelPanic(panicMagic)
		for i := 0; i < 2; i++ {
			if _, _, err := e.Query(poisonedSQL()); err == nil {
				t.Fatalf("%s: poisoned query %d succeeded", mode, i)
			}
			if _, _, err := e.Query("SELECT COUNT(*) AS n FROM lineorder"); err != nil {
				t.Fatalf("%s: engine dead after contained panic %d: %v", mode, i, err)
			}
		}
		expr.DisarmKernelPanic()
		e.Close()
	}
	if n := sys.Env.Recycle.Outstanding(); n != 0 {
		t.Errorf("%d pooled batches leaked", n)
	}
}
