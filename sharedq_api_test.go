package sharedq_test

import (
	"math/rand"
	"reflect"
	"testing"

	"sharedq"
	"sharedq/internal/pages"
	"sharedq/internal/ssb"
)

func apiSystem(t *testing.T) *sharedq.System {
	t.Helper()
	sys, err := sharedq.NewSystem(sharedq.SystemConfig{SF: 0.0005, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestPublicQuickstartPath(t *testing.T) {
	sys := apiSystem(t)
	eng := sharedq.NewEngine(sys, sharedq.Options{Mode: sharedq.CJOINSP})
	defer eng.Close()
	rows, schema, err := eng.Query(`SELECT c_nation, SUM(lo_revenue) AS rev
FROM lineorder, customer WHERE lo_custkey = c_custkey
GROUP BY c_nation ORDER BY rev DESC LIMIT 3`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if schema.Columns[1].Name != "rev" {
		t.Errorf("schema = %v", schema)
	}
	if rows[0][1].I < rows[1][1].I || rows[1][1].I < rows[2][1].I {
		t.Error("not sorted by rev DESC")
	}
}

func TestPublicModesRoundTrip(t *testing.T) {
	if len(sharedq.Modes()) != 6 {
		t.Fatalf("modes = %v", sharedq.Modes())
	}
	m, err := sharedq.ParseMode("qpipe-cs")
	if err != nil || m != sharedq.QPipeCS {
		t.Errorf("ParseMode = %v, %v", m, err)
	}
}

func TestPublicRunBatch(t *testing.T) {
	sys := apiSystem(t)
	res, err := sharedq.RunBatch(sys, sharedq.Options{Mode: sharedq.QPipeSP},
		[]string{ssb.TPCHQ1(), ssb.TPCHQ1()}, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Concurrency != 2 || res.AvgResponse <= 0 {
		t.Errorf("res = %+v", res)
	}
}

func TestPublicExperimentRegistry(t *testing.T) {
	if len(sharedq.Experiments()) < 15 {
		t.Errorf("experiments = %d", len(sharedq.Experiments()))
	}
	if _, ok := sharedq.ExperimentByID("6a"); !ok {
		t.Error("6a missing")
	}
}

func TestPublicAdviseAndPredict(t *testing.T) {
	if sharedq.Advise(4, 24).Mode != sharedq.QPipeSP {
		t.Error("low-concurrency advice")
	}
	if sharedq.Advise(100, 24).Mode != sharedq.CJOINSP {
		t.Error("high-concurrency advice")
	}
	if sharedq.PredictPushSP(sharedq.PushSPCost{Consumers: 1}) {
		t.Error("single-consumer prediction")
	}
}

// TestRandomMixAllModesAgree is the whole-system sharing-correctness
// property at the public surface: random mixed workloads return
// byte-identical results under every configuration.
func TestRandomMixAllModesAgree(t *testing.T) {
	sys := apiSystem(t)
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 2; trial++ {
		var sqls []string
		for i := 0; i < 6; i++ {
			switch rng.Intn(4) {
			case 0:
				sqls = append(sqls, ssb.Q11(rng))
			case 1:
				sqls = append(sqls, ssb.Q21(rng))
			case 2:
				sqls = append(sqls, ssb.Q32Pool(rng, 3))
			default:
				sqls = append(sqls, ssb.TPCHQ1())
			}
		}
		base := sharedq.NewEngine(sys, sharedq.Options{Mode: sharedq.Baseline})
		var wants [][]interface{}
		for _, sql := range sqls {
			rows, _, err := base.Query(sql)
			if err != nil {
				t.Fatal(err)
			}
			wants = append(wants, []interface{}{rows})
		}
		for _, mode := range []sharedq.Mode{sharedq.QPipeSP, sharedq.CJOINSP} {
			eng := sharedq.NewEngine(sys, sharedq.Options{Mode: mode})
			for i, sql := range sqls {
				rows, _, err := eng.Query(sql)
				if err != nil {
					t.Fatalf("%v: %v", mode, err)
				}
				if !reflect.DeepEqual([]interface{}{rows}, wants[i]) {
					t.Errorf("trial %d %v: query %d diverged from baseline", trial, mode, i)
				}
			}
			eng.Close()
		}
	}
}

// TestFullSSBFlightAllModes plans and executes the complete 13-query
// SSB flight under every engine configuration, checking results against
// the baseline — the broadest cross-engine correctness sweep.
func TestFullSSBFlightAllModes(t *testing.T) {
	sys := apiSystem(t)
	rng := rand.New(rand.NewSource(2024))
	sqls := make([]string, ssb.FlightSize)
	for i := range sqls {
		sqls[i] = ssb.Flight(i, rng)
	}
	base := sharedq.NewEngine(sys, sharedq.Options{Mode: sharedq.Baseline})
	wants := make([][][]string, len(sqls))
	for i, sql := range sqls {
		rows, _, err := base.Query(sql)
		if err != nil {
			t.Fatalf("baseline flight %d: %v\n%s", i, err, sql)
		}
		wants[i] = renderRows(rows)
	}
	for _, mode := range []sharedq.Mode{sharedq.QPipe, sharedq.QPipeCS, sharedq.QPipeSP, sharedq.CJOIN, sharedq.CJOINSP} {
		eng := sharedq.NewEngine(sys, sharedq.Options{Mode: mode})
		for i, sql := range sqls {
			rows, _, err := eng.Query(sql)
			if err != nil {
				t.Fatalf("%v flight %d: %v", mode, i, err)
			}
			if !reflect.DeepEqual(renderRows(rows), wants[i]) {
				t.Errorf("%v: flight query %d diverged from baseline", mode, i)
			}
		}
		eng.Close()
	}
}

func renderRows(rows []pages.Row) [][]string {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = make([]string, len(r))
		for j, v := range r {
			out[i][j] = v.String()
		}
	}
	return out
}
