// Package sharedq is a from-scratch Go reproduction of "Sharing Data
// and Work Across Concurrent Analytical Queries" (Psaroudakis,
// Athanassoulis, Ailamaki; PVLDB 6(9), 2013).
//
// It provides a staged (QPipe-style) analytical execution engine over a
// Star Schema Benchmark substrate, with the paper's sharing techniques:
//
//   - shared (circular) table scans,
//   - Simultaneous Pipelining (SP) with both communication models under
//     comparison — push-based FIFOs and pull-based Shared Pages Lists,
//   - the CJOIN global query plan with shared selections and hash
//     joins, and
//   - SP applied on top of CJOIN (the paper's CJOIN-SP integration).
//
// Execution is vectorized: every engine configuration (Baseline
// through CJOIN-SP) and both Table 2 extension substrates (SharedDB,
// Crescando) operate batch-at-a-time over typed column batches
// (internal/vec) with selection-vector filter kernels, columnar
// hash-join probes and batch aggregation. Each 32 KB storage page is
// decoded into a column batch once and shared by all concurrent scans
// through a per-table decoded-batch cache, extending the paper's
// sharing of I/O work to decode work. Query-centric execution is
// additionally morsel-parallel (Options.Parallelism, default
// GOMAXPROCS): one query fans its scan→filter→probe→aggregate
// pipeline out across all cores with results bit-identical to the
// sequential path.
//
// Storage is either slotted row pages or, with
// SystemConfig.Compressed, compressed columnar pages (dictionary,
// run-length and bit-packed encodings chosen per column at load
// time). Execution is decode-late: predicates, hash joins and
// group-by operate directly on dictionary codes where they can, and
// results are bit-identical across both formats.
//
// Quick start:
//
//	sys, _ := sharedq.NewSystem(sharedq.SystemConfig{SF: 0.01})
//	eng := sharedq.NewEngine(sys, sharedq.Options{Mode: sharedq.CJOINSP})
//	defer eng.Close()
//	rows, schema, _ := eng.Query(`SELECT c_nation, SUM(lo_revenue) AS rev
//	    FROM lineorder, customer WHERE lo_custkey = c_custkey
//	    GROUP BY c_nation ORDER BY rev DESC LIMIT 5`)
//
// # Query lifecycle
//
// Every engine entry point has a context-aware variant
// (Engine.QueryCtx, Engine.SubmitCtx): cancelling the context — or
// exceeding its deadline, or the engine-wide Options.DefaultTimeout —
// aborts the query mid-flight. A cancelled query detaches from shared
// circular scans, retracts its CJOIN admission window so it stops
// gating the shared pass, releases every pooled batch it checked out,
// and returns context.Canceled or context.DeadlineExceeded:
//
//	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
//	defer cancel()
//	rows, schema, err := eng.QueryCtx(ctx, sql)
//
// Engine.Close is a graceful drain — it stops admitting (later
// submissions return ErrClosed), waits for in-flight queries, then
// tears down the shared pipelines — and Engine.Shutdown bounds the
// drain with a context, force-cancelling whatever is still running
// when it expires.
//
// # Streaming results
//
// Engine.Stream returns a Rows cursor that delivers result rows as
// the pipeline produces them, instead of collecting everything first
// (Engine.Query and Engine.QueryCtx are collect-all wrappers over the
// same path). Iterate with Next/Scan, check Err after the loop, and
// always Close — closing mid-stream cancels the query exactly like a
// context cancellation, so an abandoned cursor detaches from shared
// scans and leaks nothing:
//
//	rows, err := eng.Stream(ctx, sql)
//	if err != nil { ... }       // admission errors surface here; a shed query never starts
//	defer rows.Close()
//	for rows.Next() {
//	    var nation string
//	    var rev int64
//	    if err := rows.Scan(&nation, &rev); err != nil { ... }
//	}
//	if err := rows.Err(); err != nil { ... }
//
// Engine.Stats returns a point-in-time observability snapshot (the
// sharing and robustness counters, batch-pool health, in-flight
// count) — the surface the network daemon's /metrics endpoint
// scrapes.
//
// # Serving and admission control
//
// Command sharedqd (cmd/sharedqd) serves an engine over the network:
// a length-prefixed binary frame protocol that streams column batches
// as the cursor produces them, plus an HTTP/JSON endpoint and a
// Prometheus-style /metrics. A client disconnect cancels its running
// query through the same lifecycle path as a context cancellation.
// In front of the engine sits a sharing-aware admission controller
// with per-tenant weighted fair queueing, predictive shedding (from
// the engine's observed service times and the GQPCost.Marginal cost
// model), and — in the CJOIN modes — admission batching aligned to
// circular-scan pass boundaries, amortizing the per-admission
// pipeline stall the paper describes in §3.1. A shed query never
// starts; it fails with *ErrRetryAfter (which matches ErrOverloaded
// under errors.Is) carrying a concrete resubmission delay.
//
// # Fault tolerance and overload
//
// Every page carries a CRC32-C checksum that is verified before
// decode, on the batch path and the row path alike. A failed
// verification is retried against the device a bounded number of
// times with backoff (transient faults heal silently); a page that
// stays corrupt is quarantined, and every query touching it — and
// only those queries — fails with *ErrCorruptPage (match with
// errors.As). A kernel panic during execution is contained to the
// query that triggered it, surfacing as *PanicError while unrelated
// queries sharing the same scan or join pipeline keep running.
// Options.MaxInFlight, Options.OverloadQueue and Options.MaxPoolBytes
// bound admission: over-limit submissions fail fast with
// ErrOverloaded (or queue for a slot, with OverloadQueue), so an
// overloaded engine sheds load instead of collapsing. The "chaos"
// experiment drives this whole schedule — corruption, read faults, a
// panicking kernel and an overload burst — across every mode and
// verifies that concurrent healthy queries return bit-identical
// results throughout.
//
// The internal packages hold the implementation; this package is the
// supported surface, re-exporting the core types.
package sharedq

import (
	"time"

	"sharedq/internal/admit"
	"sharedq/internal/core"
	"sharedq/internal/exec"
	"sharedq/internal/harness"
	"sharedq/internal/heap"
	"sharedq/internal/qpipe"
)

// ErrClosed is returned by query submissions once the engine has begun
// shutting down.
var ErrClosed = core.ErrClosed

// ErrOverloaded is returned by query submissions shed at admission: the
// engine is at Options.MaxInFlight (without OverloadQueue) or the batch
// pool's live memory exceeds Options.MaxPoolBytes. The query never
// started; retrying later is safe.
var ErrOverloaded = core.ErrOverloaded

// ErrCorruptPage identifies a quarantined page that failed checksum
// verification after exhausting its read retries. Queries touching the
// page fail with it (match with errors.As); all other queries are
// unaffected.
type ErrCorruptPage = heap.ErrCorruptPage

// PanicError wraps a panic recovered during one query's execution. The
// panicking query fails with it; queries sharing the same pipeline
// keep running.
type PanicError = exec.PanicError

// ErrRetryAfter is the admission controller's shed verdict: the query
// never started, and After is a concrete resubmission delay predicted
// from the engine's observed service times. It matches ErrOverloaded
// under errors.Is, so existing overload handling keeps working.
type ErrRetryAfter = admit.ErrRetryAfter

// Engine configuration modes (§5.1 of the paper).
const (
	Baseline = core.Baseline // query-centric volcano execution, no sharing
	QPipe    = core.QPipe    // staged engine, no sharing
	QPipeCS  = core.QPipeCS  // + circular scans
	QPipeSP  = core.QPipeSP  // + join-stage Simultaneous Pipelining
	CJOIN    = core.CJOIN    // global query plan with shared operators
	CJOINSP  = core.CJOINSP  // CJOIN with SP on the CJOIN stage
)

// Communication models for SP (§4).
const (
	CommFIFO = qpipe.CommFIFO // push-based, copy fan-out (original QPipe)
	CommSPL  = qpipe.CommSPL  // pull-based Shared Pages Lists
)

// Re-exported core types.
type (
	// Mode selects an engine configuration.
	Mode = core.Mode
	// SystemConfig describes the simulated machine and database.
	SystemConfig = core.SystemConfig
	// System is the storage substrate + catalog + metrics.
	System = core.System
	// Options tunes an Engine.
	Options = core.Options
	// Engine executes queries under one configuration.
	Engine = core.Engine
	// AdaptiveEngine routes queries between QPipe-SP and CJOIN-SP by
	// concurrency, operationalizing the paper's Table 1.
	AdaptiveEngine = core.AdaptiveEngine
	// Advice is a Table 1 rules-of-thumb recommendation.
	Advice = core.Advice
	// PushSPCost feeds the push-SP prediction model of [14].
	PushSPCost = core.PushSPCost
	// GQPCost feeds the shared-operator prediction model the paper
	// sketches in §6.
	GQPCost = core.GQPCost
	// Rows is the streaming result cursor returned by Engine.Stream.
	Rows = core.Rows
	// Stats is Engine.Stats's observability snapshot.
	Stats = core.Stats
	// AdmitConfig tunes the sharing-aware admission controller that
	// fronts a served engine (cmd/sharedqd).
	AdmitConfig = admit.Config
	// AdmitController is the admission controller itself, for embedding
	// sharedqd-style serving in another process.
	AdmitController = admit.Controller
	// Comm selects a communication model.
	Comm = qpipe.Comm
	// Result is one measured harness run.
	Result = harness.Result
	// Experiment is one reproducible paper figure/table.
	Experiment = harness.Experiment
	// Params scales an experiment.
	Params = harness.Params
	// Report is an experiment's rendered output.
	Report = harness.Report
)

// NewSystem builds the substrate and loads the SSB database.
func NewSystem(cfg SystemConfig) (*System, error) { return core.NewSystem(cfg) }

// NewEngine builds an engine over sys.
func NewEngine(sys *System, opts Options) *Engine { return core.NewEngine(sys, opts) }

// NewAdaptiveEngine builds an engine that applies the Table 1 rules of
// thumb per query (cores = 0 selects runtime.NumCPU()).
func NewAdaptiveEngine(sys *System, cores int, opts Options) *AdaptiveEngine {
	return core.NewAdaptiveEngine(sys, cores, opts)
}

// Modes lists all configurations in presentation order.
func Modes() []Mode { return core.Modes() }

// ParseMode resolves a configuration name ("qpipe-sp", "CJOIN", ...).
func ParseMode(name string) (Mode, error) { return core.ParseMode(name) }

// Advise applies the paper's rules of thumb (Table 1).
func Advise(concurrentQueries, cores int) Advice { return core.Advise(concurrentQueries, cores) }

// PredictPushSP applies the push-SP prediction model of [14].
func PredictPushSP(c PushSPCost) bool { return core.PredictPushSP(c) }

// PredictGQP applies the §6 shared-operator prediction model.
func PredictGQP(c GQPCost) bool { return core.PredictGQP(c) }

// PredictRetryAfter estimates how long a newly shed query should wait
// before resubmitting, given the system's load and observed average
// service time.
func PredictRetryAfter(inflight, queued, slots int, avgService time.Duration) time.Duration {
	return core.PredictRetryAfter(inflight, queued, slots, avgService)
}

// NewAdmitController builds an admission controller over cfg.Engine.
func NewAdmitController(cfg AdmitConfig) *AdmitController { return admit.New(cfg) }

// Experiments lists every reproducible figure and table.
func Experiments() []Experiment { return harness.All() }

// ExperimentByID finds one experiment ("6a", "10l", "16tp", ...).
func ExperimentByID(id string) (Experiment, bool) { return harness.ByID(id) }

// RunBatch submits all queries at once and measures them (§5.1
// methodology).
func RunBatch(sys *System, opts Options, sqls []string, cold bool) (Result, error) {
	return harness.RunBatch(sys, opts, sqls, cold)
}
