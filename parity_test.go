package sharedq_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"

	"sharedq"
	"sharedq/internal/crescando"
	"sharedq/internal/exec"
	"sharedq/internal/expr"
	"sharedq/internal/pages"
	"sharedq/internal/plan"
	"sharedq/internal/shareddb"
	"sharedq/internal/ssb"
	"sharedq/internal/vec"
)

// The cross-mode parity suite: the full 13-query SSB flight runs
// through every engine configuration (Baseline ... CJOIN-SP) and must
// produce identical result sets everywhere. Because every mode now
// executes on the vectorized batch path, and the Baseline results are
// additionally checked against the row-at-a-time reference executor,
// this proves the batch path equivalent to the row path it replaced.

func paritySystem(t *testing.T) *sharedq.System {
	t.Helper()
	sys, err := sharedq.NewSystem(sharedq.SystemConfig{SF: 0.002, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// flightPlans renders one deterministic instance of each of the 13 SSB
// flight templates and plans it.
func flightPlans(t *testing.T, sys *sharedq.System) []*plan.Query {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	plans := make([]*plan.Query, ssb.FlightSize)
	for i := range plans {
		sql := ssb.Flight(i, rng)
		q, err := plan.Build(sys.Cat, sql)
		if err != nil {
			t.Fatalf("flight query %d: %v", i, err)
		}
		plans[i] = q
	}
	return plans
}

func TestFlightParityAcrossModes(t *testing.T) {
	sys := paritySystem(t)
	plans := flightPlans(t, sys)

	// Reference results: the row-at-a-time executor the vectorized
	// path replaced.
	wants := make([][]pages.Row, len(plans))
	for i, q := range plans {
		w, err := exec.ExecuteRows(sys.Env, q)
		if err != nil {
			t.Fatal(err)
		}
		wants[i] = w
	}

	for _, mode := range sharedq.Modes() {
		t.Run(mode.String(), func(t *testing.T) {
			eng := sharedq.NewEngine(sys, sharedq.Options{Mode: mode})
			defer eng.Close()
			for i, q := range plans {
				got, err := eng.Submit(q)
				if err != nil {
					t.Fatalf("query %d (%s...): %v", i, q.SQL[:40], err)
				}
				if !reflect.DeepEqual(got, wants[i]) {
					t.Errorf("query %d: %s returned %d rows, reference %d; first diff %s",
						i, mode, len(got), len(wants[i]), firstDiff(got, wants[i]))
				}
			}
		})
	}
}

// TestFlightParityConcurrent submits the whole flight at once per
// mode, so sharing (circular scans, SP, the CJOIN pipeline) actually
// kicks in, and still requires baseline-identical results.
func TestFlightParityConcurrent(t *testing.T) {
	sys := paritySystem(t)
	plans := flightPlans(t, sys)
	wants := make([][]pages.Row, len(plans))
	for i, q := range plans {
		w, err := exec.ExecuteRows(sys.Env, q)
		if err != nil {
			t.Fatal(err)
		}
		wants[i] = w
	}

	for _, mode := range sharedq.Modes() {
		t.Run(mode.String(), func(t *testing.T) {
			eng := sharedq.NewEngine(sys, sharedq.Options{Mode: mode})
			defer eng.Close()
			results := make([][]pages.Row, len(plans))
			errs := make([]error, len(plans))
			var wg sync.WaitGroup
			for i := range plans {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					results[i], errs[i] = eng.Submit(plans[i])
				}(i)
			}
			wg.Wait()
			for i := range plans {
				if errs[i] != nil {
					t.Fatalf("query %d: %v", i, errs[i])
				}
				if !reflect.DeepEqual(results[i], wants[i]) {
					t.Errorf("query %d diverged under concurrency (%d vs %d rows)",
						i, len(results[i]), len(wants[i]))
				}
			}
		})
	}
}

// TestFlightParityPoisonedReleases re-runs the concurrent parity suite
// with release-poisoning on: every batch returned to the pool is
// overwritten with sentinel values first. Any operator still aliasing a
// released batch — through SPL shared readers, CJOIN satellites, FIFO
// clones — then produces loudly wrong rows (or poisoned strings) and
// fails parity, instead of silently racing on recycled storage.
func TestFlightParityPoisonedReleases(t *testing.T) {
	vec.SetPoison(true)
	defer vec.SetPoison(false)

	sys := paritySystem(t)
	plans := flightPlans(t, sys)
	wants := make([][]pages.Row, len(plans))
	for i, q := range plans {
		w, err := exec.ExecuteRows(sys.Env, q)
		if err != nil {
			t.Fatal(err)
		}
		wants[i] = w
	}

	for _, mode := range sharedq.Modes() {
		t.Run(mode.String(), func(t *testing.T) {
			eng := sharedq.NewEngine(sys, sharedq.Options{Mode: mode})
			defer eng.Close()
			results := make([][]pages.Row, len(plans))
			errs := make([]error, len(plans))
			var wg sync.WaitGroup
			for i := range plans {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					results[i], errs[i] = eng.Submit(plans[i])
				}(i)
			}
			wg.Wait()
			for i := range plans {
				if errs[i] != nil {
					t.Fatalf("query %d: %v", i, errs[i])
				}
				for _, r := range results[i] {
					for _, v := range r {
						if v.Kind == pages.KindString && v.S == vec.PoisonString {
							t.Fatalf("query %d leaked a poisoned (released) value", i)
						}
					}
				}
				if !reflect.DeepEqual(results[i], wants[i]) {
					t.Errorf("query %d diverged with poisoned releases (%d vs %d rows)",
						i, len(results[i]), len(wants[i]))
				}
			}
		})
	}
}

// --- Extension-substrate parity (Table 2 systems) ---
//
// The SharedDB and Crescando substrates execute on the same vectorized
// batch pipeline as the engine modes above; these variants hold them to
// the same bar — row-at-a-time reference results, under concurrency,
// and with release-poisoning on (the pooled joined batches of the
// shared fact probe and the pooled read-result batches of the clock
// scan must never be read after release).

// runSharedDBFlight submits the whole flight concurrently to one
// batched engine, so batch formation actually groups queries.
func runSharedDBFlight(t *testing.T, sys *sharedq.System, plans []*plan.Query) [][]pages.Row {
	t.Helper()
	eng := shareddb.New(sys.Env, shareddb.Config{})
	results := make([][]pages.Row, len(plans))
	errs := make([]error, len(plans))
	var wg sync.WaitGroup
	for i := range plans {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = eng.Submit(plans[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("shareddb query %d: %v", i, err)
		}
	}
	return results
}

func TestFlightParitySharedDB(t *testing.T) {
	sys := paritySystem(t)
	plans := flightPlans(t, sys)
	wants := make([][]pages.Row, len(plans))
	for i, q := range plans {
		w, err := exec.ExecuteRows(sys.Env, q)
		if err != nil {
			t.Fatal(err)
		}
		wants[i] = w
	}
	results := runSharedDBFlight(t, sys, plans)
	for i := range plans {
		if !reflect.DeepEqual(results[i], wants[i]) {
			t.Errorf("query %d: SharedDB returned %d rows, reference %d; first diff %s",
				i, len(results[i]), len(wants[i]), firstDiff(results[i], wants[i]))
		}
	}
}

func TestFlightParitySharedDBPoisoned(t *testing.T) {
	vec.SetPoison(true)
	defer vec.SetPoison(false)
	sys := paritySystem(t)
	plans := flightPlans(t, sys)
	wants := make([][]pages.Row, len(plans))
	for i, q := range plans {
		w, err := exec.ExecuteRows(sys.Env, q)
		if err != nil {
			t.Fatal(err)
		}
		wants[i] = w
	}
	results := runSharedDBFlight(t, sys, plans)
	for i := range plans {
		for _, r := range results[i] {
			for _, v := range r {
				if v.Kind == pages.KindString && v.S == vec.PoisonString {
					t.Fatalf("query %d leaked a poisoned (released) value", i)
				}
			}
		}
		if !reflect.DeepEqual(results[i], wants[i]) {
			t.Errorf("query %d diverged with poisoned releases (%d vs %d rows)",
				i, len(results[i]), len(wants[i]))
		}
	}
}

// crescandoParityPreds returns bound predicates over the fact schema
// exercising the vectorized kernel shapes (comparison, range, nil).
func crescandoParityPreds(t *testing.T, sys *sharedq.System) []expr.Expr {
	t.Helper()
	fact, ok := sys.Cat.FactTable()
	if !ok {
		t.Fatal("no fact table")
	}
	date := fact.Schema.Index("lo_orderdate")
	disc := fact.Schema.Index("lo_discount")
	qty := fact.Schema.Index("lo_quantity")
	if date < 0 || disc < 0 || qty < 0 {
		t.Fatal("fact schema missing parity columns")
	}
	return []expr.Expr{
		nil,
		&expr.Bin{Op: expr.OpGe, L: &expr.Col{Name: "lo_orderdate", Idx: date}, R: &expr.Const{V: pages.Int(19960101)}},
		&expr.And{Terms: []expr.Expr{
			&expr.Between{X: &expr.Col{Name: "lo_discount", Idx: disc}, Lo: &expr.Const{V: pages.Int(1)}, Hi: &expr.Const{V: pages.Int(3)}},
			&expr.Bin{Op: expr.OpLt, L: &expr.Col{Name: "lo_quantity", Idx: qty}, R: &expr.Const{V: pages.Int(25)}},
		}},
	}
}

// factRows materializes a private copy of the fact table's rows.
func factRows(t *testing.T, sys *sharedq.System) []pages.Row {
	t.Helper()
	fact, _ := sys.Cat.FactTable()
	var rows []pages.Row
	err := exec.ScanTable(sys.Env, fact, func(page []pages.Row) error {
		for _, r := range page {
			rows = append(rows, r.Clone())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

// sortedRows orders rows by full lexicographic value comparison, so
// the clock scan's rotated output order can be compared against the
// reference's table order.
func sortedRows(rows []pages.Row) []pages.Row {
	out := append([]pages.Row(nil), rows...)
	sort.Slice(out, func(i, j int) bool {
		for c := range out[i] {
			if cmp := out[i][c].Compare(out[j][c]); cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
	return out
}

func runCrescandoParity(t *testing.T, poisoned bool) {
	t.Helper()
	sys := paritySystem(t)
	ref := factRows(t, sys)
	scan := crescando.NewScan(factRows(t, sys), 256)
	defer scan.Close()
	fact, _ := sys.Cat.FactTable()
	qty := fact.Schema.Index("lo_quantity")

	check := func(stage string) {
		for pi, pred := range crescandoParityPreds(t, sys) {
			res := scan.Read(pred)
			got := sortedRows(res.Rows())
			res.Release()
			rp := expr.CompilePred(pred)
			var want []pages.Row
			for _, r := range ref {
				if rp == nil || rp(r) {
					want = append(want, r)
				}
			}
			want = sortedRows(want)
			if poisoned {
				for _, r := range got {
					for _, v := range r {
						if (v.Kind == pages.KindString && v.S == vec.PoisonString) ||
							(v.Kind == pages.KindInt && v.I == vec.PoisonInt) {
							t.Fatalf("%s pred %d leaked a poisoned (released) value", stage, pi)
						}
					}
				}
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s pred %d: clock scan returned %d rows, reference %d; first diff %s",
					stage, pi, len(got), len(want), firstDiff(got, want))
			}
		}
	}
	check("initial")

	// An update applied through the scan must leave it in parity with
	// the same update applied to the reference rows.
	upPred := crescandoParityPreds(t, sys)[1]
	res := scan.Update(upPred, qty, pages.Int(999))
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	rp := expr.CompilePred(upPred)
	var updated int64
	for _, r := range ref {
		if rp(r) {
			r[qty] = pages.Int(999)
			updated++
		}
	}
	if res.Updated != updated {
		t.Fatalf("update touched %d tuples, reference %d", res.Updated, updated)
	}
	check("post-update")
}

func TestCrescandoParity(t *testing.T) { runCrescandoParity(t, false) }

func TestCrescandoParityPoisoned(t *testing.T) {
	vec.SetPoison(true)
	defer vec.SetPoison(false)
	runCrescandoParity(t, true)
}

func firstDiff(got, want []pages.Row) string {
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	for i := 0; i < n; i++ {
		if !reflect.DeepEqual(got[i], want[i]) {
			return fmt.Sprintf("at row %d: got %v want %v", i, got[i], want[i])
		}
	}
	return fmt.Sprintf("row counts differ (%d vs %d)", len(got), len(want))
}

// TestFlightParityParallelism re-runs the concurrent cross-mode parity
// suite at explicit intra-query parallelism levels with release-
// poisoning on: morsel workers hand pooled batches across scan → probe
// → partial-aggregate stages, and any checkout→Retain→Release mistake
// in those hand-offs surfaces as poisoned values or parity misses.
// Parallelism 1 pins the sequential fallback; 4 drives the morsel
// dispatcher, the parallel QPipe page fetch and the partitioned CJOIN
// scanners even on small machines.
func TestFlightParityParallelism(t *testing.T) {
	vec.SetPoison(true)
	defer vec.SetPoison(false)

	sys := paritySystem(t)
	plans := flightPlans(t, sys)
	wants := make([][]pages.Row, len(plans))
	for i, q := range plans {
		w, err := exec.ExecuteRows(sys.Env, q)
		if err != nil {
			t.Fatal(err)
		}
		wants[i] = w
	}

	for _, par := range []int{1, 4} {
		for _, mode := range sharedq.Modes() {
			t.Run(fmt.Sprintf("%s/parallelism=%d", mode, par), func(t *testing.T) {
				eng := sharedq.NewEngine(sys, sharedq.Options{Mode: mode, Parallelism: par})
				defer eng.Close()
				results := make([][]pages.Row, len(plans))
				errs := make([]error, len(plans))
				var wg sync.WaitGroup
				for i := range plans {
					wg.Add(1)
					go func(i int) {
						defer wg.Done()
						results[i], errs[i] = eng.Submit(plans[i])
					}(i)
				}
				wg.Wait()
				for i := range plans {
					if errs[i] != nil {
						t.Fatalf("query %d: %v", i, errs[i])
					}
					for _, r := range results[i] {
						for _, v := range r {
							if v.Kind == pages.KindString && v.S == vec.PoisonString {
								t.Fatalf("query %d leaked a poisoned (released) value", i)
							}
						}
					}
					if !reflect.DeepEqual(results[i], wants[i]) {
						t.Errorf("query %d diverged at parallelism %d (%d vs %d rows)",
							i, par, len(results[i]), len(wants[i]))
					}
				}
			})
		}
	}
}

// TestFlightParityCompressed loads the same (SF, Seed) database twice —
// slotted row pages versus compressed columnar pages — and requires the
// whole flight to return bit-identical results in every mode at
// parallelism 1 and 4, with release-poisoning on. This pins down the
// operate-on-compressed kernels: dictionary-code predicates, code-space
// join probes and gathers, and the memoized group-by must agree exactly
// with the decoded path, and any kernel that leaks a released coded
// batch surfaces as a poisoned value. The row-at-a-time reference
// executor also runs against the compressed system, covering the
// decode-to-rows path.
func TestFlightParityCompressed(t *testing.T) {
	vec.SetPoison(true)
	defer vec.SetPoison(false)

	ref := paritySystem(t)
	plans := flightPlans(t, ref)
	wants := make([][]pages.Row, len(plans))
	for i, q := range plans {
		w, err := exec.ExecuteRows(ref.Env, q)
		if err != nil {
			t.Fatal(err)
		}
		wants[i] = w
	}

	csys, err := sharedq.NewSystem(sharedq.SystemConfig{SF: 0.002, Seed: 7, Compressed: true})
	if err != nil {
		t.Fatal(err)
	}
	cplans := flightPlans(t, csys)

	t.Run("rows", func(t *testing.T) {
		for i, q := range cplans {
			got, err := exec.ExecuteRows(csys.Env, q)
			if err != nil {
				t.Fatalf("query %d: %v", i, err)
			}
			if !reflect.DeepEqual(got, wants[i]) {
				t.Errorf("query %d: row path diverged on compressed storage (%d vs %d rows); first diff %s",
					i, len(got), len(wants[i]), firstDiff(got, wants[i]))
			}
		}
	})

	t.Run("shareddb", func(t *testing.T) {
		results := runSharedDBFlight(t, csys, cplans)
		for i := range cplans {
			if !reflect.DeepEqual(results[i], wants[i]) {
				t.Errorf("query %d: SharedDB diverged on compressed storage (%d vs %d rows); first diff %s",
					i, len(results[i]), len(wants[i]), firstDiff(results[i], wants[i]))
			}
		}
	})

	t.Run("crescando", func(t *testing.T) {
		refRows := factRows(t, ref)
		scan := crescando.NewScan(factRows(t, csys), 256)
		defer scan.Close()
		for pi, pred := range crescandoParityPreds(t, csys) {
			res := scan.Read(pred)
			got := sortedRows(res.Rows())
			res.Release()
			rp := expr.CompilePred(pred)
			var want []pages.Row
			for _, r := range refRows {
				if rp == nil || rp(r) {
					want = append(want, r)
				}
			}
			want = sortedRows(want)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("pred %d: clock scan over compressed-loaded rows returned %d rows, reference %d; first diff %s",
					pi, len(got), len(want), firstDiff(got, want))
			}
		}
	})

	for _, par := range []int{1, 4} {
		for _, mode := range sharedq.Modes() {
			t.Run(fmt.Sprintf("%s/parallelism=%d", mode, par), func(t *testing.T) {
				eng := sharedq.NewEngine(csys, sharedq.Options{Mode: mode, Parallelism: par})
				defer eng.Close()
				results := make([][]pages.Row, len(cplans))
				errs := make([]error, len(cplans))
				var wg sync.WaitGroup
				for i := range cplans {
					wg.Add(1)
					go func(i int) {
						defer wg.Done()
						results[i], errs[i] = eng.Submit(cplans[i])
					}(i)
				}
				wg.Wait()
				for i := range cplans {
					if errs[i] != nil {
						t.Fatalf("query %d: %v", i, errs[i])
					}
					for _, r := range results[i] {
						for _, v := range r {
							if v.Kind == pages.KindString && v.S == vec.PoisonString {
								t.Fatalf("query %d leaked a poisoned (released) value", i)
							}
						}
					}
					if !reflect.DeepEqual(results[i], wants[i]) {
						t.Errorf("query %d diverged on compressed storage (%s, parallelism %d): %d vs %d rows; first diff %s",
							i, mode, par, len(results[i]), len(wants[i]), firstDiff(results[i], wants[i]))
					}
				}
			})
		}
	}
}
