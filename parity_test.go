package sharedq_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"sharedq"
	"sharedq/internal/exec"
	"sharedq/internal/pages"
	"sharedq/internal/plan"
	"sharedq/internal/ssb"
	"sharedq/internal/vec"
)

// The cross-mode parity suite: the full 13-query SSB flight runs
// through every engine configuration (Baseline ... CJOIN-SP) and must
// produce identical result sets everywhere. Because every mode now
// executes on the vectorized batch path, and the Baseline results are
// additionally checked against the row-at-a-time reference executor,
// this proves the batch path equivalent to the row path it replaced.

func paritySystem(t *testing.T) *sharedq.System {
	t.Helper()
	sys, err := sharedq.NewSystem(sharedq.SystemConfig{SF: 0.002, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// flightPlans renders one deterministic instance of each of the 13 SSB
// flight templates and plans it.
func flightPlans(t *testing.T, sys *sharedq.System) []*plan.Query {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	plans := make([]*plan.Query, ssb.FlightSize)
	for i := range plans {
		sql := ssb.Flight(i, rng)
		q, err := plan.Build(sys.Cat, sql)
		if err != nil {
			t.Fatalf("flight query %d: %v", i, err)
		}
		plans[i] = q
	}
	return plans
}

func TestFlightParityAcrossModes(t *testing.T) {
	sys := paritySystem(t)
	plans := flightPlans(t, sys)

	// Reference results: the row-at-a-time executor the vectorized
	// path replaced.
	wants := make([][]pages.Row, len(plans))
	for i, q := range plans {
		w, err := exec.ExecuteRows(sys.Env, q)
		if err != nil {
			t.Fatal(err)
		}
		wants[i] = w
	}

	for _, mode := range sharedq.Modes() {
		t.Run(mode.String(), func(t *testing.T) {
			eng := sharedq.NewEngine(sys, sharedq.Options{Mode: mode})
			defer eng.Close()
			for i, q := range plans {
				got, err := eng.Submit(q)
				if err != nil {
					t.Fatalf("query %d (%s...): %v", i, q.SQL[:40], err)
				}
				if !reflect.DeepEqual(got, wants[i]) {
					t.Errorf("query %d: %s returned %d rows, reference %d; first diff %s",
						i, mode, len(got), len(wants[i]), firstDiff(got, wants[i]))
				}
			}
		})
	}
}

// TestFlightParityConcurrent submits the whole flight at once per
// mode, so sharing (circular scans, SP, the CJOIN pipeline) actually
// kicks in, and still requires baseline-identical results.
func TestFlightParityConcurrent(t *testing.T) {
	sys := paritySystem(t)
	plans := flightPlans(t, sys)
	wants := make([][]pages.Row, len(plans))
	for i, q := range plans {
		w, err := exec.ExecuteRows(sys.Env, q)
		if err != nil {
			t.Fatal(err)
		}
		wants[i] = w
	}

	for _, mode := range sharedq.Modes() {
		t.Run(mode.String(), func(t *testing.T) {
			eng := sharedq.NewEngine(sys, sharedq.Options{Mode: mode})
			defer eng.Close()
			results := make([][]pages.Row, len(plans))
			errs := make([]error, len(plans))
			var wg sync.WaitGroup
			for i := range plans {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					results[i], errs[i] = eng.Submit(plans[i])
				}(i)
			}
			wg.Wait()
			for i := range plans {
				if errs[i] != nil {
					t.Fatalf("query %d: %v", i, errs[i])
				}
				if !reflect.DeepEqual(results[i], wants[i]) {
					t.Errorf("query %d diverged under concurrency (%d vs %d rows)",
						i, len(results[i]), len(wants[i]))
				}
			}
		})
	}
}

// TestFlightParityPoisonedReleases re-runs the concurrent parity suite
// with release-poisoning on: every batch returned to the pool is
// overwritten with sentinel values first. Any operator still aliasing a
// released batch — through SPL shared readers, CJOIN satellites, FIFO
// clones — then produces loudly wrong rows (or poisoned strings) and
// fails parity, instead of silently racing on recycled storage.
func TestFlightParityPoisonedReleases(t *testing.T) {
	vec.SetPoison(true)
	defer vec.SetPoison(false)

	sys := paritySystem(t)
	plans := flightPlans(t, sys)
	wants := make([][]pages.Row, len(plans))
	for i, q := range plans {
		w, err := exec.ExecuteRows(sys.Env, q)
		if err != nil {
			t.Fatal(err)
		}
		wants[i] = w
	}

	for _, mode := range sharedq.Modes() {
		t.Run(mode.String(), func(t *testing.T) {
			eng := sharedq.NewEngine(sys, sharedq.Options{Mode: mode})
			defer eng.Close()
			results := make([][]pages.Row, len(plans))
			errs := make([]error, len(plans))
			var wg sync.WaitGroup
			for i := range plans {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					results[i], errs[i] = eng.Submit(plans[i])
				}(i)
			}
			wg.Wait()
			for i := range plans {
				if errs[i] != nil {
					t.Fatalf("query %d: %v", i, errs[i])
				}
				for _, r := range results[i] {
					for _, v := range r {
						if v.Kind == pages.KindString && v.S == vec.PoisonString {
							t.Fatalf("query %d leaked a poisoned (released) value", i)
						}
					}
				}
				if !reflect.DeepEqual(results[i], wants[i]) {
					t.Errorf("query %d diverged with poisoned releases (%d vs %d rows)",
						i, len(results[i]), len(wants[i]))
				}
			}
		})
	}
}

func firstDiff(got, want []pages.Row) string {
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	for i := 0; i < n; i++ {
		if !reflect.DeepEqual(got[i], want[i]) {
			return fmt.Sprintf("at row %d: got %v want %v", i, got[i], want[i])
		}
	}
	return fmt.Sprintf("row counts differ (%d vs %d)", len(got), len(want))
}
