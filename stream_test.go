package sharedq_test

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"sharedq"
	"sharedq/internal/vec"
)

// The streaming-cursor lifecycle suite: Engine.Stream must behave
// identically across every engine configuration, both communication
// models and both parallelism settings — a fully drained cursor yields
// exactly the collect-all result, an early Close or a mid-iteration
// cancel releases everything the query held, and in every case the
// engine afterwards holds zero checked-out pool batches and zero
// goroutines. Poisoned releases turn any use-after-release on an
// abandonment path into a loud failure, and the CI race job runs this
// suite under -race.

// streamQuery is a plain projection — the streaming case: rows flow
// while the scan is still running, in many chunks, so early Close and
// mid-iteration cancel genuinely interrupt a live pipeline.
const streamQuery = `SELECT lo_orderkey, lo_revenue FROM lineorder WHERE lo_discount >= 2`

// streamAggQuery is the blocking case: one final chunk after the
// aggregate completes.
const streamAggQuery = `SELECT c_nation, SUM(lo_revenue) AS rev FROM lineorder, customer
	WHERE lo_custkey = c_custkey GROUP BY c_nation ORDER BY rev DESC`

// fingerprint reduces a result to order-independent invariants (shared
// circular scans may deliver projection rows starting mid-pass, so row
// order is not comparable across modes).
func fingerprint(t *testing.T, rows *sharedq.Rows) (n int, sum int64) {
	t.Helper()
	for rows.Next() {
		var key, rev int64
		if err := rows.Scan(&key, &rev); err != nil {
			t.Fatal(err)
		}
		n++
		sum += key ^ rev
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	return n, sum
}

func TestStreamLifecycleAcrossModes(t *testing.T) {
	vec.SetPoison(true)
	defer vec.SetPoison(false)
	sys := paritySystem(t)

	// Reference fingerprint from the baseline collect-all path.
	refEng := sharedq.NewEngine(sys, sharedq.Options{Mode: sharedq.Baseline})
	refRows, _, err := refEng.Query(streamQuery)
	if err != nil {
		t.Fatal(err)
	}
	wantN, wantSum := len(refRows), int64(0)
	for _, r := range refRows {
		wantSum += r[0].I ^ r[1].I
	}
	refEng.Close()
	if wantN == 0 {
		t.Fatal("reference query returned no rows")
	}

	for _, mode := range sharedq.Modes() {
		for _, cm := range []sharedq.Comm{sharedq.CommSPL, sharedq.CommFIFO} {
			for _, par := range []int{1, 4} {
				name := fmt.Sprintf("%s/%s/p%d", mode, cm, par)
				t.Run(name, func(t *testing.T) {
					eng := sharedq.NewEngine(sys, sharedq.Options{Mode: mode, Comm: cm, Parallelism: par})

					// Full drain: the stream is the collect-all result.
					rows, err := eng.Stream(context.Background(), streamQuery)
					if err != nil {
						t.Fatal(err)
					}
					if n, sum := fingerprint(t, rows); n != wantN || sum != wantSum {
						t.Errorf("streamed %d rows (checksum %d), want %d (%d)", n, sum, wantN, wantSum)
					}
					if err := rows.Close(); err != nil {
						t.Errorf("Close after drain: %v", err)
					}

					// Early Close mid-stream: a deliberate abandon is not an
					// error, and the engine stays usable.
					rows, err = eng.Stream(context.Background(), streamQuery)
					if err != nil {
						t.Fatal(err)
					}
					for i := 0; i < 3 && rows.Next(); i++ {
					}
					if err := rows.Close(); err != nil {
						t.Errorf("early Close: %v", err)
					}

					// Cancel mid-iteration: once the buffered chunks drain,
					// the cursor must surface context.Canceled.
					ctx, cancel := context.WithCancel(context.Background())
					rows, err = eng.Stream(ctx, streamQuery)
					if err != nil {
						cancel()
						t.Fatal(err)
					}
					if rows.Next() {
						cancel()
					}
					got := 1
					for rows.Next() {
						got++
					}
					// Blocking shapes (e.g. the morsel-parallel path) may have
					// emitted the whole result as one chunk before the cancel
					// landed; a truncated stream must surface the cancel.
					if got < wantN {
						if err := rows.Err(); !errors.Is(err, context.Canceled) {
							t.Errorf("after cancel: Err() = %v, want context.Canceled", err)
						}
					}
					rows.Close()
					cancel()

					// The blocking shape: aggregates arrive as one final
					// chunk, through the same cursor.
					rows, err = eng.Stream(context.Background(), streamAggQuery)
					if err != nil {
						t.Fatal(err)
					}
					var aggN int
					for rows.Next() {
						var nation string
						var rev int64
						if err := rows.Scan(&nation, &rev); err != nil {
							t.Fatal(err)
						}
						aggN++
					}
					if err := rows.Err(); err != nil {
						t.Fatal(err)
					}
					if aggN == 0 {
						t.Error("aggregate stream returned no rows")
					}
					rows.Close()

					eng.Close()
					checkNoLeaks(t, sys)
				})
			}
		}
	}
}

// TestStreamCursorContract pins the cursor's small-print: Collect,
// Scan destination checking, double Close, use after Close, and
// admission errors surfacing from Stream itself (a shed query never
// produces a cursor).
func TestStreamCursorContract(t *testing.T) {
	vec.SetPoison(true)
	defer vec.SetPoison(false)
	sys := paritySystem(t)
	eng := sharedq.NewEngine(sys, sharedq.Options{Mode: sharedq.CJOINSP})

	// Collect drains and closes in one call.
	rows, err := eng.Stream(context.Background(), streamAggQuery)
	if err != nil {
		t.Fatal(err)
	}
	all, err := rows.Collect()
	if err != nil || len(all) == 0 {
		t.Fatalf("Collect = %d rows, %v", len(all), err)
	}
	if rows.Next() {
		t.Error("Next after Collect should be false")
	}

	// Scan type checking.
	rows, err = eng.Stream(context.Background(), streamAggQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("no rows: %v", rows.Err())
	}
	var wrong int64
	if err := rows.Scan(&wrong); err == nil {
		t.Error("Scan with wrong arity should fail")
	}
	var nation string
	if err := rows.Scan(&nation, &wrong); err != nil {
		t.Errorf("Scan: %v", err)
	}
	// Double Close is idempotent.
	if err := rows.Close(); err != nil {
		t.Errorf("first Close: %v", err)
	}
	if err := rows.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if rows.Next() {
		t.Error("Next after Close should be false")
	}

	// Plan errors surface from Stream, before any cursor exists.
	if _, err := eng.Stream(context.Background(), "SELEKT nonsense"); err == nil {
		t.Error("bad SQL should fail at Stream")
	}

	// An already-cancelled context never starts the query.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.Stream(ctx, streamQuery); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled Stream = %v, want context.Canceled", err)
	}
	eng.Close()
	checkNoLeaks(t, sys)
}

// TestStreamOverloadNeverStarts pins the admission contract on the
// streaming path: with MaxInFlight saturated, Stream fails fast with
// ErrOverloaded and the shed query observably never began.
func TestStreamOverloadNeverStarts(t *testing.T) {
	sys := paritySystem(t)
	eng := sharedq.NewEngine(sys, sharedq.Options{Mode: sharedq.QPipeSP, MaxInFlight: 1})
	defer eng.Close()

	rows, err := eng.Stream(context.Background(), streamQuery)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !rows.Next() {
		t.Fatalf("no first row: %v", rows.Err())
	}
	// The first cursor holds the only slot while it is open.
	r2, err := eng.Stream(context.Background(), streamQuery)
	if err == nil {
		r2.Close()
		t.Fatal("second Stream succeeded with the only slot held")
	}
	if !errors.Is(err, sharedq.ErrOverloaded) {
		t.Fatalf("second Stream = %v, want ErrOverloaded", err)
	}
}
