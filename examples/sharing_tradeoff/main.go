// Sharing trade-off: the paper's central observation, measured live —
// at low concurrency query-centric operators beat shared operators
// (CJOIN pays bookkeeping), at high concurrency shared operators win.
// The example also shows the Table 1 advisor agreeing with the
// measurements and the [14] prediction model for push-based SP.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"runtime"
	"time"

	"sharedq"
	"sharedq/internal/ssb"
)

func main() {
	sys, err := sharedq.NewSystem(sharedq.SystemConfig{SF: 0.02, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	cores := runtime.NumCPU()
	fmt.Printf("machine: %d cores\n\n", cores)

	for _, n := range []int{2, 4 * cores} {
		rng := rand.New(rand.NewSource(int64(n)))
		qs := make([]string, n)
		for i := range qs {
			qs[i] = ssb.Q32(rng)
		}
		sp, err := sharedq.RunBatch(sys, sharedq.Options{Mode: sharedq.QPipeSP}, qs, false)
		if err != nil {
			log.Fatal(err)
		}
		cj, err := sharedq.RunBatch(sys, sharedq.Options{Mode: sharedq.CJOIN}, qs, false)
		if err != nil {
			log.Fatal(err)
		}
		winner := sharedq.QPipeSP
		if cj.AvgResponse < sp.AvgResponse {
			winner = sharedq.CJOIN
		}
		advice := sharedq.Advise(n, cores)
		fmt.Printf("%3d queries: QPipe-SP %-12s CJOIN %-12s measured winner: %-9s advisor: %s\n",
			n,
			sp.AvgResponse.Round(time.Microsecond),
			cj.AvgResponse.Round(time.Microsecond),
			winner, advice.Mode)
	}

	fmt.Println("\npush-SP prediction model (Johnson et al. [14]):")
	for _, consumers := range []int{4, 64} {
		share := sharedq.PredictPushSP(sharedq.PushSPCost{
			PivotWork:          100 * time.Millisecond,
			ForwardPerConsumer: 5 * time.Millisecond,
			Consumers:          consumers,
			Cores:              cores,
		})
		fmt.Printf("  %2d consumers on %d cores -> share? %v\n", consumers, cores, share)
	}
	fmt.Println("(with pull-based SPL the model is unnecessary: sharing never hurts)")
}
