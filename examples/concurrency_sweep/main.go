// Concurrency sweep: a miniature of the paper's Figure 10 — the same
// random SSB Q3.2 workload at growing concurrency under four engine
// configurations, showing the query-centric model degrading while the
// sharing configurations hold up.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"sharedq"
	"sharedq/internal/ssb"
)

func main() {
	sys, err := sharedq.NewSystem(sharedq.SystemConfig{SF: 0.01, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	modes := []sharedq.Mode{sharedq.QPipe, sharedq.QPipeCS, sharedq.QPipeSP, sharedq.CJOIN}
	fmt.Printf("%-8s", "queries")
	for _, m := range modes {
		fmt.Printf("%14s", m)
	}
	fmt.Println("   (avg response)")

	for _, n := range []int{1, 4, 16, 32} {
		rng := rand.New(rand.NewSource(int64(n)))
		qs := make([]string, n)
		for i := range qs {
			qs[i] = ssb.Q32(rng)
		}
		fmt.Printf("%-8d", n)
		for _, m := range modes {
			res, err := sharedq.RunBatch(sys, sharedq.Options{Mode: m}, qs, false)
			if err != nil {
				log.Fatalf("%s at %d: %v", m, n, err)
			}
			fmt.Printf("%14s", res.AvgResponse.Round(time.Microsecond))
		}
		fmt.Println()
	}
	fmt.Println("\nShapes to expect: QPipe grows fastest with concurrency;")
	fmt.Println("circular scans (QPipe-CS) help; SP helps more when plans repeat;")
	fmt.Println("CJOIN's shared operators pay off as concurrency rises.")
}
