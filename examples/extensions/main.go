// Extensions: the systems around the paper's core comparison —
// the adaptive engine that applies the Table 1 rules of thumb per
// query, SharedDB-style batched execution, and a Crescando-style
// circular scan serving mixed reads and updates in one pass.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"

	"sharedq"
	"sharedq/internal/crescando"
	"sharedq/internal/expr"
	"sharedq/internal/pages"
	"sharedq/internal/plan"
	"sharedq/internal/shareddb"
	"sharedq/internal/ssb"
)

func main() {
	sys, err := sharedq.NewSystem(sharedq.SystemConfig{SF: 0.005, Seed: 21})
	if err != nil {
		log.Fatal(err)
	}

	// 1. Adaptive engine: Table 1 applied per query. With a threshold
	// of 2 "cores", concurrent submissions route to the GQP while a
	// lone query stays query-centric.
	fmt.Println("--- adaptive engine (Table 1 per query) ---")
	ae := sharedq.NewAdaptiveEngine(sys, 2, sharedq.Options{})
	rng := rand.New(rand.NewSource(1))
	if _, _, err := ae.Query(ssb.Q32(rng)); err != nil { // lone query
		log.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ { // burst
		sql := ssb.Q32(rng)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := ae.Query(sql); err != nil {
				log.Println(err)
			}
		}()
	}
	wg.Wait()
	qc, gqp := ae.Routing()
	fmt.Printf("routed: %d query-centric (QPipe-SP), %d GQP (CJOIN-SP)\n\n", qc, gqp)
	ae.Close()

	// 2. SharedDB-style batching: concurrent same-shape queries are
	// evaluated as one shared pass (shared scans, joins, grouping).
	fmt.Println("--- SharedDB-style batched execution ---")
	be := shareddb.New(sys.Env, shareddb.Config{})
	var bwg sync.WaitGroup
	for i := 0; i < 5; i++ {
		q, err := plan.Build(sys.Cat, ssb.Q32(rng))
		if err != nil {
			log.Fatal(err)
		}
		bwg.Add(1)
		go func() {
			defer bwg.Done()
			if _, err := be.Submit(q); err != nil {
				log.Println(err)
			}
		}()
	}
	bwg.Wait()
	fmt.Printf("batch stats: %v\n\n", be.Stats())

	// 3. Crescando scan: one circular pass serves a batch of reads and
	// updates with updates-before-reads semantics per chunk batch.
	// Predicates are vectorized selection kernels over the partition's
	// column batches.
	fmt.Println("--- Crescando-style read/update scan ---")
	rows := make([]pages.Row, 10000)
	for i := range rows {
		rows[i] = pages.Row{pages.Int(int64(i)), pages.Int(0)}
	}
	scan := crescando.NewScan(rows, 512)
	defer scan.Close()
	flagged := &expr.Bin{Op: expr.OpEq, L: &expr.Col{Name: "flag", Idx: 1}, R: &expr.Const{V: pages.Int(99)}}
	var cwg sync.WaitGroup
	cwg.Add(2)
	var upd, rd crescando.Result
	go func() {
		defer cwg.Done()
		upd = scan.Update(nil, 1, pages.Int(99)) // flag every tuple
	}()
	go func() {
		defer cwg.Done()
		rd = scan.Read(flagged)
	}()
	cwg.Wait()
	defer rd.Release()
	fmt.Printf("update touched %d tuples; concurrent read matched %d; cycles=%d; stats=%v\n",
		upd.Updated, rd.Batch.Len(), scan.Cycles(), scan.Stats())
}
