// Serving quickstart: stand up a sharedqd-style server in-process —
// frame protocol, HTTP/JSON, /metrics, and a weighted admission
// controller — then act as its clients: stream a query over TCP,
// absorb a typed backpressure verdict, query over HTTP, scrape
// metrics, and drain gracefully.
//
// The standalone daemon is `go run ./cmd/sharedqd`; this example wires
// the same pieces as a library so the lifecycle is visible.
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
	"time"

	"sharedq"
	"sharedq/internal/serve"
)

func main() {
	sys, err := sharedq.NewSystem(sharedq.SystemConfig{SF: 0.005, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	eng := sharedq.NewEngine(sys, sharedq.Options{Mode: sharedq.CJOINSP})
	defer eng.Close()

	// The admission controller fronts the engine: weighted fair queueing
	// across tenants, predictive shedding with retry-after, and (in the
	// CJOIN modes) admission batching at circular-pass boundaries.
	srv := serve.New(serve.Config{
		Engine:   eng,
		Addr:     "127.0.0.1:0", // ephemeral ports for the example
		HTTPAddr: "127.0.0.1:0",
		Admit: sharedq.AdmitConfig{
			Slots:       4,
			MaxQueue:    8,
			AlignPasses: true,
			Weights:     map[string]int{"gold": 4, "free": 1},
		},
	})
	if err := srv.Start(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serving frames on %s, http on %s\n\n", srv.Addr(), srv.HTTPAddr())

	const q = `SELECT c_nation, SUM(lo_revenue) AS rev FROM lineorder, customer
		WHERE lo_custkey = c_custkey AND c_region = 'ASIA'
		GROUP BY c_nation ORDER BY rev DESC LIMIT 3`

	// A frame-protocol client: the server streams column batches as the
	// engine's cursor produces them; disconnecting mid-stream cancels
	// the query server-side.
	cl, err := serve.Dial(srv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	rs, err := cl.Query("gold", q)
	if err != nil {
		if re, ok := err.(*serve.RemoteError); ok && re.Backpressure() {
			// A shed query never started; the verdict says when to retry.
			log.Fatalf("shed, retry in %v", re.RetryAfter)
		}
		log.Fatal(err)
	}
	fmt.Println("--- streamed over TCP (tenant gold) ---")
	for rs.Next() {
		fmt.Println(rs.Row())
	}
	if rs.Err() != nil {
		log.Fatal(rs.Err())
	}
	fmt.Printf("(%d rows)\n\n", rs.Count())
	cl.Close()

	// The HTTP/JSON convenience endpoint, same lifecycle underneath.
	resp, err := http.Post("http://"+srv.HTTPAddr()+"/query", "application/json",
		strings.NewReader(`{"tenant":"free","sql":"SELECT COUNT(*) AS n FROM lineorder"}`))
	if err != nil {
		log.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("--- HTTP (tenant free, status %d) ---\n%s\n\n", resp.StatusCode, body)

	// Prometheus-style metrics: engine counters, pool health, admission
	// and per-tenant counters.
	resp, err = http.Get("http://" + srv.HTTPAddr() + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	scrape, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Println("--- /metrics (excerpt) ---")
	for _, line := range strings.Split(string(scrape), "\n") {
		if strings.Contains(line, "tenant") || strings.Contains(line, "serve_queries") ||
			strings.Contains(line, "pass") {
			fmt.Println(line)
		}
	}

	// Graceful drain: stop accepting, let in-flight queries finish.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nclean drain")
}
