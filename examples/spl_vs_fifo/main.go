// SPL vs FIFO: the paper's Figure 6 in miniature. Identical TPC-H Q1
// queries share a circular scan; with push-based FIFOs the host copies
// results to every satellite sequentially (the serialization point),
// with pull-based Shared Pages Lists consumers fetch independently.
package main

import (
	"fmt"
	"log"
	"time"

	"sharedq"
	"sharedq/internal/ssb"
)

func main() {
	sys, err := sharedq.NewSystem(sharedq.SystemConfig{SF: 0.01, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-8s %16s %16s %16s %16s\n",
		"queries", "NoSP(FIFO)", "CS(FIFO)", "NoSP(SPL)", "CS(SPL)")
	for _, n := range []int{1, 4, 16, 32} {
		qs := make([]string, n)
		for i := range qs {
			qs[i] = ssb.TPCHQ1()
		}
		fmt.Printf("%-8d", n)
		for _, cfg := range []sharedq.Options{
			{Mode: sharedq.QPipe, Comm: sharedq.CommFIFO},
			{Mode: sharedq.QPipeCS, Comm: sharedq.CommFIFO},
			{Mode: sharedq.QPipe, Comm: sharedq.CommSPL},
			{Mode: sharedq.QPipeCS, Comm: sharedq.CommSPL},
		} {
			res, err := sharedq.RunBatch(sys, cfg, qs, false)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%16s", res.AvgResponse.Round(time.Microsecond))
		}
		fmt.Println()
	}
	fmt.Println("\nExpected shape (Fig 6): CS(FIFO) hurts at low concurrency (the")
	fmt.Println("push serialization point); CS(SPL) is never worse than NoSP and")
	fmt.Println("wins clearly at high concurrency.")
}
