// Quickstart: load a small SSB database, run one analytical query under
// two engine configurations, and print results plus sharing statistics.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"sharedq"
)

func main() {
	// A system is the simulated machine: device, FS cache, buffer pool,
	// catalog, metrics. SF 0.01 is ~80 MB of SSB data.
	sys, err := sharedq.NewSystem(sharedq.SystemConfig{SF: 0.01, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	const q = `SELECT c_nation, SUM(lo_revenue) AS rev, COUNT(*) AS orders
FROM lineorder, customer
WHERE lo_custkey = c_custkey AND c_region = 'ASIA'
GROUP BY c_nation
ORDER BY rev DESC
LIMIT 5`

	for _, mode := range []sharedq.Mode{sharedq.Baseline, sharedq.CJOINSP} {
		eng := sharedq.NewEngine(sys, sharedq.Options{Mode: mode})
		// Stream returns a cursor: rows arrive as the pipeline produces
		// them. Always Close — closing mid-stream cancels the query and
		// releases everything it held.
		rows, err := eng.Stream(context.Background(), q)
		if err != nil {
			log.Fatalf("%s: %v", mode, err)
		}
		fmt.Printf("--- %s ---\n", mode)
		for rows.Next() {
			var nation string
			var rev, orders int64
			if err := rows.Scan(&nation, &rev, &orders); err != nil {
				log.Fatalf("%s: %v", mode, err)
			}
			fmt.Printf("%-15s %14d %8d\n", nation, rev, orders)
		}
		if err := rows.Err(); err != nil {
			log.Fatalf("%s: %v", mode, err)
		}
		rows.Close()
		if stats := eng.Stats(); len(stats.Counters) > 0 {
			fmt.Printf("stats: %v\n", stats.Counters)
		}
		eng.Close()
		fmt.Println()
	}

	// Query lifecycle: QueryCtx runs a query under a context, so a
	// deadline (or an abandoning client calling cancel) stops it
	// mid-flight — it detaches from shared scans, retracts its CJOIN
	// admission window and releases every pooled batch it held.
	eng := sharedq.NewEngine(sys, sharedq.Options{
		Mode:           sharedq.CJOINSP,
		DefaultTimeout: 5 * time.Second, // engine-wide bound for every query
	})
	defer eng.Close() // graceful drain: waits for in-flight queries
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Microsecond)
	defer cancel()
	if _, _, err := eng.QueryCtx(ctx, q); errors.Is(err, context.DeadlineExceeded) {
		fmt.Println("50µs deadline: query cancelled mid-flight, no leaks")
	} else if err != nil {
		log.Fatal(err)
	} else {
		fmt.Println("query finished inside 50µs (warm cache)")
	}

	// The library's rules-of-thumb advisor (Table 1 of the paper).
	fmt.Println("advice for 8 queries on 24 cores: ", sharedq.Advise(8, 24).Mode)
	fmt.Println("advice for 256 queries on 24 cores:", sharedq.Advise(256, 24).Mode)
}
