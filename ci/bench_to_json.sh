#!/usr/bin/env bash
# Convert `go test -bench` text on stdin into a JSON map of
# benchmark -> {cpu, ns_op, b_op, allocs_op}, used by CI to publish the
# bench smoke run (bench_smoke.json, uploaded as the BENCH_pr4.json
# workflow artifact). The trailing "-N" GOMAXPROCS suffix go test
# appends under -cpu is kept in the key (so multi-cpu sweeps do not
# collide) and also parsed out into the "cpu" field; no suffix means
# GOMAXPROCS=1.
set -euo pipefail
awk '
BEGIN { print "{"; n = 0 }
/^Benchmark/ {
    name = $1
    cpu = 1
    if (match(name, /-[0-9]+$/)) {
        cpu = substr(name, RSTART + 1)
    }
    ns = ""; b = ""; al = ""
    for (i = 1; i <= NF; i++) {
        if ($i == "ns/op")     ns = $(i-1)
        if ($i == "B/op")      b  = $(i-1)
        if ($i == "allocs/op") al = $(i-1)
    }
    line = sprintf("  \"%s\": {\"cpu\": %d", name, cpu); sep = ", "
    if (ns != "") { line = line sep "\"ns_op\": " ns }
    if (b  != "") { line = line sep "\"b_op\": " b }
    if (al != "") { line = line sep "\"allocs_op\": " al }
    line = line "}"
    if (n++) printf(",\n")
    printf("%s", line)
}
END { if (n) printf("\n"); print "}" }'
