#!/usr/bin/env bash
# Convert `go test -bench` text on stdin into a JSON map of
# benchmark -> {ns_op, b_op, allocs_op}, used by CI to publish the
# bench smoke run (bench_smoke.json, uploaded as the BENCH_pr3.json
# workflow artifact).
set -euo pipefail
awk '
BEGIN { print "{"; n = 0 }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns = ""; b = ""; al = ""
    for (i = 1; i <= NF; i++) {
        if ($i == "ns/op")     ns = $(i-1)
        if ($i == "B/op")      b  = $(i-1)
        if ($i == "allocs/op") al = $(i-1)
    }
    line = sprintf("  \"%s\": {", name); sep = ""
    if (ns != "") { line = line sep "\"ns_op\": " ns;     sep = ", " }
    if (b  != "") { line = line sep "\"b_op\": " b;       sep = ", " }
    if (al != "") { line = line sep "\"allocs_op\": " al }
    line = line "}"
    if (n++) printf(",\n")
    printf("%s", line)
}
END { if (n) printf("\n"); print "}" }'
