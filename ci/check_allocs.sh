#!/usr/bin/env bash
# Fails if allocs/op on BenchmarkModes/Baseline regresses above the
# committed threshold (ci/allocs_threshold.txt). Allocation counts are
# deterministic enough for a hard gate — unlike ns/op, they do not
# depend on CI machine load.
set -euo pipefail
cd "$(dirname "$0")/.."

threshold=$(grep -v '^#' ci/allocs_threshold.txt | tr -d '[:space:]')
out=$(go test -run '^$' -bench 'BenchmarkModes/Baseline' -benchmem -benchtime 5x .)
echo "$out"

allocs=$(echo "$out" | awk '/BenchmarkModes\/Baseline/ {for (i=1; i<=NF; i++) if ($i == "allocs/op") print $(i-1)}')
if [ -z "$allocs" ]; then
    echo "check_allocs: could not parse allocs/op from benchmark output" >&2
    exit 1
fi

echo "BenchmarkModes/Baseline: ${allocs} allocs/op (threshold ${threshold})"
if [ "$allocs" -gt "$threshold" ]; then
    echo "check_allocs: FAIL — allocs/op ${allocs} exceeds threshold ${threshold}" >&2
    exit 1
fi
echo "check_allocs: OK"
