#!/usr/bin/env bash
# Fails if allocs/op on any gated benchmark regresses above its
# committed threshold. ci/allocs_threshold.txt holds one
# "<benchmark-name> <max-allocs-per-op>" row per gate; a name ending in
# "-N" (e.g. BenchmarkModes/Baseline-4) gates the benchmark at
# GOMAXPROCS=N via `go test -cpu N` — the parallel variants of the
# morsel-driven execution path. Gated benchmarks are grouped by (cpu,
# depth) and each group runs as one `go test -bench` pass.
# Allocation counts are deterministic enough for a hard gate — unlike
# ns/op, they do not depend on CI machine load.
set -euo pipefail
cd "$(dirname "$0")/.."

mapfile -t rows < <(grep -vE '^[[:space:]]*(#|$)' ci/allocs_threshold.txt)
if [ "${#rows[@]}" -eq 0 ]; then
    echo "check_allocs: no gated benchmarks in ci/allocs_threshold.txt" >&2
    exit 1
fi

# split_row <row> -> sets name threshold cpu bench (bench = name minus
# any -N cpu suffix).
split_row() {
    name=$(awk '{print $1}' <<<"$1")
    threshold=$(awk '{print $2}' <<<"$1")
    cpu=1
    bench="$name"
    if [[ "$name" =~ ^(.+)-([0-9]+)$ ]]; then
        bench="${BASH_REMATCH[1]}"
        cpu="${BASH_REMATCH[2]}"
    fi
}

depth_of() {
    awk -v s="$1" 'BEGIN{ print gsub(/\//, "/", s) }' </dev/null
}

# Preflight: every gated top-level benchmark function must still
# exist before any benchmark time is spent. `go test -list` only sees
# top-level functions (sub-benchmarks are discovered at run time), so
# renamed sub-benchmarks are caught by the per-row output check below;
# this catches the removed/renamed function case in ~a second with a
# message that names the missing benchmark.
tops=$(for row in "${rows[@]}"; do
    split_row "$row"
    echo "${bench%%/*}"
done | sort -u)
listed=$(go test -run '^$' -list "^($(paste -sd'|' - <<<"$tops"))\$" . | grep '^Benchmark' || true)
missing=0
for top in $tops; do
    if ! grep -qx "$top" <<<"$listed"; then
        echo "check_allocs: gated benchmark ${top} not found in package — removed or renamed? Update ci/allocs_threshold.txt to match." >&2
        missing=1
    fi
done
if [ "$missing" -ne 0 ]; then
    exit 1
fi

# -bench patterns are matched per slash-separated level, and a
# benchmark shallower than the pattern only runs in sub-discovery mode
# (no measurement), so gated names are grouped by depth (and cpu) and
# each group runs as one anchored pass — ungated siblings (e.g. the
# other BenchmarkModes configurations) do not run.
groups=$(for row in "${rows[@]}"; do
    split_row "$row"
    echo "$cpu $(depth_of "$bench")"
done | sort -u)

out=""
while read -r gcpu gdepth; do
    benches=$(for row in "${rows[@]}"; do
        split_row "$row"
        if [ "$cpu" = "$gcpu" ] && [ "$(depth_of "$bench")" = "$gdepth" ]; then
            echo "$bench"
        fi
    done | sort -u)
    pattern=""
    for level in $(seq 0 "$gdepth"); do
        part=$(printf '%s\n' "$benches" | awk -v l="$level" \
            '{ split($1, a, "/"); print a[l+1] }' | sort -u | paste -sd'|' -)
        pattern="${pattern:+${pattern}/}^(${part})\$"
    done
    out+=$(go test -run '^$' -cpu "$gcpu" -bench "$pattern" -benchmem -benchtime 5x .)
    out+=$'\n'
done <<<"$groups"
echo "$out"
echo

fail=0
for row in "${rows[@]}"; do
    split_row "$row"
    # A -cpu 1 run prints no GOMAXPROCS suffix, so the expected output
    # name is the bare benchmark there and the suffixed row name above.
    expect="$name"
    if [ "$cpu" = "1" ]; then
        expect="$bench"
    fi
    allocs=$(awk -v n="$expect" '
        /^Benchmark/ {
            if ($1 == n) for (i = 1; i <= NF; i++) if ($i == "allocs/op") print $(i-1)
        }' <<<"$out" | head -n1)
    if [ -z "$allocs" ]; then
        echo "check_allocs: no benchmark output row for ${name} — sub-benchmark removed or renamed? Update ci/allocs_threshold.txt to match." >&2
        fail=1
        continue
    fi
    echo "${name}: ${allocs} allocs/op (threshold ${threshold})"
    if [ "$allocs" -gt "$threshold" ]; then
        echo "check_allocs: FAIL — ${name} allocs/op ${allocs} exceeds threshold ${threshold}" >&2
        fail=1
    fi
done
if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "check_allocs: OK"
