#!/usr/bin/env bash
# Fails if allocs/op on any gated benchmark regresses above its
# committed threshold. ci/allocs_threshold.txt holds one
# "<benchmark-name> <max-allocs-per-op>" row per gate; every gated
# benchmark runs in one `go test -bench` pass and every row is checked.
# Allocation counts are deterministic enough for a hard gate — unlike
# ns/op, they do not depend on CI machine load.
set -euo pipefail
cd "$(dirname "$0")/.."

mapfile -t rows < <(grep -vE '^[[:space:]]*(#|$)' ci/allocs_threshold.txt)
if [ "${#rows[@]}" -eq 0 ]; then
    echo "check_allocs: no gated benchmarks in ci/allocs_threshold.txt" >&2
    exit 1
fi

# -bench patterns are matched per slash-separated level, and a
# benchmark shallower than the pattern only runs in sub-discovery mode
# (no measurement), so gated names are grouped by depth and each depth
# runs as one anchored pass — ungated siblings (e.g. the other
# BenchmarkModes configurations) do not run.
out=""
for depth in $(printf '%s\n' "${rows[@]}" | awk '{ print gsub(/\//, "/", $1) }' | sort -u); do
    pattern=""
    for level in $(seq 0 "$depth"); do
        part=$(printf '%s\n' "${rows[@]}" | awk -v d="$depth" -v l="$level" \
            '{ n = split($1, a, "/"); if (n == d + 1) print a[l+1] }' | sort -u | paste -sd'|' -)
        pattern="${pattern:+${pattern}/}^(${part})\$"
    done
    out+=$(go test -run '^$' -bench "$pattern" -benchmem -benchtime 5x .)
    out+=$'\n'
done
echo "$out"
echo

fail=0
for row in "${rows[@]}"; do
    name=$(awk '{print $1}' <<<"$row")
    threshold=$(awk '{print $2}' <<<"$row")
    allocs=$(awk -v n="$name" '
        /^Benchmark/ {
            bn = $1; sub(/-[0-9]+$/, "", bn)
            if (bn == n) for (i = 1; i <= NF; i++) if ($i == "allocs/op") print $(i-1)
        }' <<<"$out")
    if [ -z "$allocs" ]; then
        echo "check_allocs: no benchmark output row for ${name}" >&2
        fail=1
        continue
    fi
    echo "${name}: ${allocs} allocs/op (threshold ${threshold})"
    if [ "$allocs" -gt "$threshold" ]; then
        echo "check_allocs: FAIL — ${name} allocs/op ${allocs} exceeds threshold ${threshold}" >&2
        fail=1
    fi
done
if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "check_allocs: OK"
