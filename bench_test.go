// Benchmarks regenerating every figure and table of the paper's
// evaluation (§5), plus micro-benchmarks of the core data structures.
//
// Figure benchmarks run the corresponding harness experiment at a
// reduced scale (Quick mode) and report the headline series as custom
// metrics, so `go test -bench=.` prints the same rows the paper plots.
// cmd/runexp regenerates each figure at adjustable scale for closer
// inspection.
package sharedq_test

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"

	"sharedq"
	"sharedq/internal/buffer"
	"sharedq/internal/catalog"
	"sharedq/internal/comm"
	"sharedq/internal/crescando"
	"sharedq/internal/disk"
	"sharedq/internal/exec"
	"sharedq/internal/expr"
	"sharedq/internal/heap"
	"sharedq/internal/pages"
	"sharedq/internal/plan"
	"sharedq/internal/serve"
	"sharedq/internal/shareddb"
	"sharedq/internal/ssb"
	"sharedq/internal/vec"
	"sharedq/internal/wire"
)

// benchParams are the reduced scales used for `go test -bench`.
var benchParams = sharedq.Params{SF: 0.002, MaxQ: 8, Seed: 1, Quick: true, Duration: 300 * time.Millisecond}

// runExperiment runs one harness experiment per benchmark iteration and
// reports the last table's final row as metrics.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := sharedq.ExperimentByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	var rep *sharedq.Report
	var err error
	for i := 0; i < b.N; i++ {
		rep, err = e.Run(benchParams)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Report the last row of the first table: the highest-load point of
	// the figure's headline series.
	t := rep.Tables[0]
	if len(t.Rows) == 0 {
		return
	}
	last := t.Rows[len(t.Rows)-1]
	for i := 1; i < len(last) && i < len(t.Header); i++ {
		if v, err := strconv.ParseFloat(last[i], 64); err == nil {
			b.ReportMetric(v, sanitize(t.Header[i])+"_ms")
		}
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// --- One benchmark per paper figure/table ---

func BenchmarkFig06aPushSP(b *testing.B)         { runExperiment(b, "6a") }
func BenchmarkFig06bPullSP(b *testing.B)         { runExperiment(b, "6b") }
func BenchmarkFig06cSpeedups(b *testing.B)       { runExperiment(b, "6c") }
func BenchmarkFig10LMemory(b *testing.B)         { runExperiment(b, "10l") }
func BenchmarkFig10RDisk(b *testing.B)           { runExperiment(b, "10r") }
func BenchmarkFig11Selectivity(b *testing.B)     { runExperiment(b, "11") }
func BenchmarkFig12HighConcurrency(b *testing.B) { runExperiment(b, "12") }
func BenchmarkFig13ScaleFactor(b *testing.B)     { runExperiment(b, "13") }
func BenchmarkFig14SixteenPlans(b *testing.B)    { runExperiment(b, "14") }
func BenchmarkFig15Similarity(b *testing.B)      { runExperiment(b, "15") }
func BenchmarkFig16ResponseTime(b *testing.B)    { runExperiment(b, "16rt") }
func BenchmarkFig16Throughput(b *testing.B)      { runExperiment(b, "16tp") }
func BenchmarkWoPInterarrival(b *testing.B)      { runExperiment(b, "wop") }
func BenchmarkBatchedExecution(b *testing.B)     { runExperiment(b, "batch") }
func BenchmarkAblationSPLSize(b *testing.B)      { runExperiment(b, "splsize") }
func BenchmarkAblationDistParts(b *testing.B)    { runExperiment(b, "distparts") }

func BenchmarkTable1Advisor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, n := range []int{1, 8, 64, 512} {
			_ = sharedq.Advise(n, 24)
		}
	}
}

// --- Configuration micro-comparisons on a shared system ---

var (
	benchSysOnce sync.Once
	benchSys     *sharedq.System
)

func benchSystem(b *testing.B) *sharedq.System {
	b.Helper()
	benchSysOnce.Do(func() {
		var err error
		benchSys, err = sharedq.NewSystem(sharedq.SystemConfig{SF: 0.002, Seed: 1})
		if err != nil {
			panic(err)
		}
	})
	return benchSys
}

// BenchmarkModes measures one batch of 8 pooled Q3.2 instances under
// every engine configuration — the per-mode cost picture behind the
// rules of thumb (Table 1).
func BenchmarkModes(b *testing.B) {
	sys := benchSystem(b)
	for _, mode := range sharedq.Modes() {
		b.Run(mode.String(), func(b *testing.B) {
			qs := make([]string, 8)
			for i := range qs {
				qs[i] = ssb.Q32PoolPlan(i % 4)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sharedq.RunBatch(sys, sharedq.Options{Mode: mode}, qs, false); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkModesCtx measures the context-aware query path: the same 8
// pooled Q3.2 instances as BenchmarkModes, each submitted through
// QueryCtx-style plumbing (per-query context derivation, deadline
// composition, cooperative cancellation checks) with a generous
// deadline that never fires. CI gates its allocs/op so the lifecycle
// machinery stays off the steady-state allocation path.
func BenchmarkModesCtx(b *testing.B) {
	sys := benchSystem(b)
	for _, mode := range []sharedq.Mode{sharedq.Baseline, sharedq.CJOIN} {
		b.Run(mode.String(), func(b *testing.B) {
			eng := sharedq.NewEngine(sys, sharedq.Options{Mode: mode, DefaultTimeout: time.Hour})
			defer eng.Close()
			plans := make([]*plan.Query, 8)
			for i := range plans {
				q, err := plan.Build(sys.Cat, ssb.Q32PoolPlan(i%4))
				if err != nil {
					b.Fatal(err)
				}
				plans[i] = q
			}
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for _, q := range plans {
					wg.Add(1)
					go func(q *plan.Query) {
						defer wg.Done()
						if _, err := eng.SubmitCtx(ctx, q); err != nil {
							b.Error(err)
						}
					}(q)
				}
				wg.Wait()
			}
		})
	}
}

// BenchmarkCommModels compares FIFO and SPL end to end on the circular
// scan path (the §4 comparison).
func BenchmarkCommModels(b *testing.B) {
	sys := benchSystem(b)
	for _, m := range []sharedq.Comm{sharedq.CommFIFO, sharedq.CommSPL} {
		b.Run(m.String(), func(b *testing.B) {
			qs := make([]string, 8)
			for i := range qs {
				qs[i] = ssb.TPCHQ1()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sharedq.RunBatch(sys, sharedq.Options{Mode: sharedq.QPipeCS, Comm: m}, qs, false); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Data-structure micro-benchmarks ---

func BenchmarkSPLProduceConsume(b *testing.B) {
	page := comm.NewPage([]pages.Row{{pages.Int(1)}})
	b.ReportAllocs()
	for _, consumers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("consumers=%d", consumers), func(b *testing.B) {
			s := comm.NewSPL(8)
			var wg sync.WaitGroup
			for c := 0; c < consumers; c++ {
				cons := s.AddConsumer(false, -1)
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						if _, ok := cons.Next(); !ok {
							return
						}
					}
				}()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Append(page)
			}
			s.Close()
			wg.Wait()
		})
	}
}

func BenchmarkFIFOPutGet(b *testing.B) {
	f := comm.NewFIFO(8)
	page := comm.NewPage([]pages.Row{{pages.Int(1)}})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			if _, ok := f.Get(); !ok {
				return
			}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Put(page)
	}
	f.Close()
	<-done
}

func BenchmarkPageClone(b *testing.B) {
	rows := make([]pages.Row, comm.DefaultPageRows)
	for i := range rows {
		rows[i] = pages.Row{pages.Int(int64(i)), pages.Str("payload"), pages.Float(1.5)}
	}
	p := comm.NewPage(rows)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Clone()
	}
}

func BenchmarkHashTableBuildProbe(b *testing.B) {
	const n = 10000
	b.Run("build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ht := exec.NewHashTable(n, nil)
			for k := 0; k < n; k++ {
				ht.Insert(pages.Int(int64(k)), pages.Row{pages.Int(int64(k))})
			}
		}
	})
	b.Run("probe", func(b *testing.B) {
		ht := exec.NewHashTable(n, nil)
		for k := 0; k < n; k++ {
			ht.Insert(pages.Int(int64(k)), pages.Row{pages.Int(int64(k))})
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ht.Lookup(pages.Int(int64(i % n)))
		}
	})
}

// --- Vectorized batch-execution micro-benchmarks ---

// benchBatch builds one page-sized batch of SSB-like fact tuples, plus
// the equivalent row slice, for kernel comparisons.
func benchBatch() (*vec.Batch, []pages.Row) {
	rows := make([]pages.Row, comm.DefaultPageRows)
	for i := range rows {
		rows[i] = pages.Row{
			pages.Int(int64(i)),
			pages.Int(int64(i % 11)),     // "discount"
			pages.Int(int64(i % 50)),     // "quantity"
			pages.Int(int64(1000 + i*7)), // "price"
			pages.Str(ssb.Nations[i%len(ssb.Nations)]),
		}
	}
	return vec.FromRows(rows), rows
}

// benchFilterExpr is a Q1.1-shaped conjunction over the benchBatch
// layout (discount BETWEEN 1 AND 3 AND quantity < 25).
func benchFilterExpr(b *testing.B) expr.Expr {
	b.Helper()
	s := pages.NewSchema(
		pages.Column{Name: "k", Kind: pages.KindInt},
		pages.Column{Name: "d", Kind: pages.KindInt},
		pages.Column{Name: "q", Kind: pages.KindInt},
		pages.Column{Name: "p", Kind: pages.KindInt},
		pages.Column{Name: "n", Kind: pages.KindString},
	)
	e, err := expr.Bind(&expr.And{Terms: []expr.Expr{
		&expr.Between{X: expr.NewCol("d"), Lo: &expr.Const{V: pages.Int(1)}, Hi: &expr.Const{V: pages.Int(3)}},
		&expr.Bin{Op: expr.OpLt, L: expr.NewCol("q"), R: &expr.Const{V: pages.Int(25)}},
	}}, s)
	if err != nil {
		b.Fatal(err)
	}
	return e
}

// BenchmarkFilterKernel compares the vectorized selection kernel with
// the row-at-a-time compiled predicate on one page of tuples.
func BenchmarkFilterKernel(b *testing.B) {
	e := benchFilterExpr(b)
	batch, rows := benchBatch()
	b.Run("batch", func(b *testing.B) {
		vp := expr.CompileVecPred(e)
		var buf []int
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			vp(batch, vec.FullSel(batch.Len(), &buf))
		}
	})
	b.Run("rows", func(b *testing.B) {
		p := expr.CompilePred(e)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			exec.FilterRowsPred(rows, p)
		}
	})
}

// BenchmarkBatchProbe compares the columnar hash-join probe with the
// row-at-a-time ProbeJoin over one page of tuples.
func BenchmarkBatchProbe(b *testing.B) {
	sys := benchSystem(b)
	q, err := plan.Build(sys.Cat, ssb.Q32PoolPlan(1))
	if err != nil {
		b.Fatal(err)
	}
	d := q.Dims[0]
	bj, err := exec.BuildBatchJoin(sys.Env, d)
	if err != nil {
		b.Fatal(err)
	}
	ht, err := exec.BuildDimTable(sys.Env, d)
	if err != nil {
		b.Fatal(err)
	}
	var batch *vec.Batch
	if batch, err = exec.ReadTableBatch(sys.Env, q.Fact, 0); err != nil {
		b.Fatal(err)
	}
	rows := batch.AppendTo(nil)
	b.Run("batch", func(b *testing.B) {
		var ps exec.ProbeScratch
		var buf []int
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bj.Probe(sys.Env, batch, vec.FullSel(batch.Len(), &buf), &ps)
		}
	})
	b.Run("rows", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			exec.ProbeJoin(sys.Env, ht, d.FactColIdx, rows)
		}
	})
}

// BenchmarkAggregate measures the vectorized grouped-aggregation hot
// path: one page-sized joined batch folded into a warm aggregator, per
// grouping fast path. Steady state (every group seen) must not
// allocate — the acceptance bar for the group-id grouping pass — which
// the int-key sub-benchmarks demonstrate with 0 allocs/op.
func BenchmarkAggregate(b *testing.B) {
	sys := benchSystem(b)
	t := sys.Cat.MustGet(ssb.TableLineorder)
	batch, err := exec.ReadTableBatch(sys.Env, t, 0)
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name string
		sql  string
	}{
		{"int1", "SELECT lo_orderdate, SUM(lo_revenue) AS r, COUNT(*) AS n FROM lineorder GROUP BY lo_orderdate"},
		{"int2", "SELECT lo_orderdate, lo_discount, SUM(lo_revenue) AS r FROM lineorder GROUP BY lo_orderdate, lo_discount"},
		{"ungrouped", "SELECT SUM(lo_extendedprice * lo_discount) AS rev FROM lineorder"},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			q, err := plan.Build(sys.Cat, tc.sql)
			if err != nil {
				b.Fatal(err)
			}
			agg := exec.NewAggregator(q, sys.Col)
			var buf []int
			sel := vec.FullSel(batch.Len(), &buf)
			agg.AddBatch(batch, sel) // warm up: create every group
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				agg.AddBatch(batch, sel)
			}
		})
	}
}

// BenchmarkBatchJoin measures the steady-state pooled probe: one
// page-sized fact batch probed through a built dimension side, with the
// joined output batch released back to the pool each iteration.
func BenchmarkBatchJoin(b *testing.B) {
	sys := benchSystem(b)
	q, err := plan.Build(sys.Cat, ssb.Q32PoolPlan(1))
	if err != nil {
		b.Fatal(err)
	}
	d := q.Dims[0]
	bj, err := exec.BuildBatchJoin(sys.Env, d)
	if err != nil {
		b.Fatal(err)
	}
	batch, err := exec.ReadTableBatch(sys.Env, q.Fact, 0)
	if err != nil {
		b.Fatal(err)
	}
	var ps exec.ProbeScratch
	var buf []int
	sel := vec.FullSel(batch.Len(), &buf)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		joined := bj.Probe(sys.Env, batch, sel, &ps)
		joined.Release()
	}
}

// BenchmarkPageDecode measures one page decode into a column batch,
// cold versus through the decoded-batch cache.
func BenchmarkPageDecode(b *testing.B) {
	sys := benchSystem(b)
	t := sys.Cat.MustGet(ssb.TableLineorder)
	kinds := vec.Kinds(t.Schema)
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := heap.ReadPageBatch(sys.Pool, nil, nil, t, i%t.NumPages, kinds, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		bc := heap.NewBatchCache(t.NumPages + 1)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := heap.ReadPageBatch(sys.Pool, nil, bc, t, i%t.NumPages, kinds, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkRowCodec(b *testing.B) {
	r := pages.Row{pages.Int(123456), pages.Int(42), pages.Str("UNITED KI1"), pages.Float(99.25)}
	enc := pages.EncodeRow(nil, r)
	b.Run("encode", func(b *testing.B) {
		buf := make([]byte, 0, 64)
		for i := 0; i < b.N; i++ {
			buf = pages.EncodeRow(buf[:0], r)
		}
	})
	b.Run("decode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := pages.DecodeRow(enc); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkSSBGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := sharedq.NewSystem(sharedq.SystemConfig{SF: 0.001, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Extension substrates (Table 2 systems) ---

func BenchmarkSharedDBBatch(b *testing.B) {
	sys := benchSystem(b)
	for _, n := range []int{1, 8} {
		b.Run(fmt.Sprintf("queries=%d", n), func(b *testing.B) {
			qs := make([]string, n)
			for i := range qs {
				qs[i] = ssb.Q32PoolPlan(i % 4)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				eng := shareddb.New(sys.Env, shareddb.Config{Window: time.Millisecond})
				var wg sync.WaitGroup
				for _, sql := range qs {
					q, err := plan.Build(sys.Cat, sql)
					if err != nil {
						b.Fatal(err)
					}
					wg.Add(1)
					go func() {
						defer wg.Done()
						if _, err := eng.Submit(q); err != nil {
							b.Error(err)
						}
					}()
				}
				wg.Wait()
			}
		})
	}
}

func BenchmarkCrescandoScan(b *testing.B) {
	rows := make([]pages.Row, 50000)
	for i := range rows {
		rows[i] = pages.Row{pages.Int(int64(i)), pages.Int(0)}
	}
	s := crescando.NewScan(rows, 1024)
	defer s.Close()
	b.Run("read", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res := s.Read(nil)
			if got := res.Batch.Len(); got != 50000 {
				b.Fatalf("read %d rows", got)
			}
			res.Release()
		}
	})
	b.Run("mixed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			wg.Add(2)
			go func() {
				defer wg.Done()
				s.Update(nil, 1, pages.Int(int64(i)))
			}()
			go func() {
				defer wg.Done()
				s.Read(nil).Release()
			}()
			wg.Wait()
		}
	})
}

// BenchmarkSharedDB measures one steady-state SharedDB batch wave — 8
// pooled Q3.2 instances submitted concurrently against a long-lived
// engine, plans pre-built — on the vectorized shared path (shared
// column-batch dimension builds, bitmap-annotated columnar fact
// probes, pooled joined batches, GroupAccs aggregation tail). CI gates
// its allocs/op against ci/allocs_threshold.txt: each wave rebuilds
// the per-batch shared state (the SharedDB model), so the committed
// threshold is the acceptance bar rather than 0.
func BenchmarkSharedDB(b *testing.B) {
	sys := benchSystem(b)
	eng := shareddb.New(sys.Env, shareddb.Config{Window: time.Millisecond})
	plans := make([]*plan.Query, 8)
	for i := range plans {
		q, err := plan.Build(sys.Cat, ssb.Q32PoolPlan(i%4))
		if err != nil {
			b.Fatal(err)
		}
		plans[i] = q
	}
	runWave := func() {
		var wg sync.WaitGroup
		for _, q := range plans {
			wg.Add(1)
			go func(q *plan.Query) {
				defer wg.Done()
				if _, err := eng.Submit(q); err != nil {
					b.Error(err)
				}
			}(q)
		}
		wg.Wait()
	}
	runWave() // warm the decoded-batch cache and the batch pool
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runWave()
	}
}

// BenchmarkCrescando measures the steady-state vectorized clock scan:
// one selective read per op against a warm scan, the result batch
// released back to the scan's pool each cycle. CI gates its allocs/op
// against ci/allocs_threshold.txt (per-request bookkeeping — the Op
// and its completion channel — is the steady-state floor).
func BenchmarkCrescando(b *testing.B) {
	rows := make([]pages.Row, 50000)
	for i := range rows {
		rows[i] = pages.Row{pages.Int(int64(i)), pages.Int(0)}
	}
	s := crescando.NewScan(rows, 1024)
	defer s.Close()
	pred := &expr.Bin{Op: expr.OpGe, L: &expr.Col{Name: "k", Idx: 0}, R: &expr.Const{V: pages.Int(49990)}}
	s.Read(pred).Release() // warm the result pool
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := s.Read(pred)
		if res.Batch.Len() != 10 {
			b.Fatalf("read %d rows, want 10", res.Batch.Len())
		}
		res.Release()
	}
}

// scanBenchTable builds a fresh device holding one 200k-row table in
// the given storage variant: "raw" slotted pages, or compressed
// columnar pages exercising one encoding per variant. The data is
// identical everywhere — a run-structured key, a small-range measure
// and a low-cardinality nation string — so bytes-read/row isolates the
// encoding.
func scanBenchTable(b *testing.B, variant string) (*disk.Device, *buffer.Pool, *catalog.Table) {
	b.Helper()
	dev := disk.NewDevice(disk.Config{Timed: false})
	tbl := &catalog.Table{
		Name: "scan",
		Schema: pages.NewSchema(
			pages.Column{Name: "k", Kind: pages.KindInt},
			pages.Column{Name: "v", Kind: pages.KindInt},
			pages.Column{Name: "s", Kind: pages.KindString},
		),
	}
	const n = 200000
	gen := func(emit func(pages.Row) error) error {
		for i := 0; i < n; i++ {
			r := pages.Row{
				pages.Int(int64(i / 64)),
				pages.Int(int64(i % 1000)),
				pages.Str(ssb.Nations[(i/64)%len(ssb.Nations)]),
			}
			if err := emit(r); err != nil {
				return err
			}
		}
		return nil
	}
	var err error
	if variant == "raw" {
		err = heap.Load(dev, tbl, gen)
	} else {
		d := pages.NewDict(ssb.Nations)
		var cols []pages.ColCompression
		switch variant {
		case "dict":
			cols = []pages.ColCompression{
				{Enc: pages.EncRaw}, {Enc: pages.EncRaw}, {Enc: pages.EncDict, Dict: d},
			}
		case "rle":
			cols = []pages.ColCompression{
				{Enc: pages.EncRLE}, {Enc: pages.EncRaw}, {Enc: pages.EncRLE, Dict: d},
			}
		case "bitpack":
			cols = []pages.ColCompression{
				{Enc: pages.EncBitpack, Min: 0, Width: pages.BitsFor(uint64((n - 1) / 64))},
				{Enc: pages.EncBitpack, Min: 0, Width: pages.BitsFor(999)},
				{Enc: pages.EncDict, Dict: d},
			}
		default:
			b.Fatalf("unknown variant %q", variant)
		}
		err = heap.LoadColumnar(dev, tbl, &pages.TableCompression{Cols: cols}, gen)
	}
	if err != nil {
		b.Fatal(err)
	}
	cache := disk.NewFSCache(dev, disk.CacheConfig{})
	return dev, buffer.NewPool(cache, 256), tbl
}

// BenchmarkScanBandwidth measures effective scan bandwidth per storage
// variant: a cold pass over the whole table reports bytes-read/row and
// rows/page (the compression factor), then the timed loop scans pages
// through a warm decoded-batch cache — the steady state of a shared
// scan, which must not allocate.
func BenchmarkScanBandwidth(b *testing.B) {
	for _, variant := range []string{"raw", "dict", "rle", "bitpack"} {
		b.Run(variant, func(b *testing.B) {
			dev, pool, tbl := scanBenchTable(b, variant)
			kinds := vec.Kinds(tbl.Schema)
			rows := 0
			for i := 0; i < tbl.NumPages; i++ {
				bt, err := heap.ReadPageBatch(pool, nil, nil, tbl, i, kinds, nil)
				if err != nil {
					b.Fatal(err)
				}
				rows += bt.Len()
			}
			coldBytes := dev.BytesRead()
			bc := heap.NewBatchCache(tbl.NumPages + 1)
			for i := 0; i < tbl.NumPages; i++ {
				if _, err := heap.ReadPageBatch(pool, nil, bc, tbl, i, kinds, nil); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := heap.ReadPageBatch(pool, nil, bc, tbl, i%tbl.NumPages, kinds, nil); err != nil {
					b.Fatal(err)
				}
			}
			// Reported after the loop: ResetTimer clears extra metrics.
			b.ReportMetric(float64(coldBytes)/float64(rows), "bytes-read/row")
			b.ReportMetric(float64(rows)/float64(tbl.NumPages), "rows/page")
		})
	}
}

// BenchmarkChecksumVerify measures the integrity check every page read
// performs before decode, per page format. It sits on the cold-read
// path of every scan, so it must not allocate; CI gates it at zero.
func BenchmarkChecksumVerify(b *testing.B) {
	slotted := pages.NewSlottedPage()
	for i := 0; slotted.AppendRow(pages.Row{pages.Int(int64(i)), pages.Str("checksum-bench-record"), pages.Float(1.5)}); i++ {
	}
	slotted.Seal()

	kinds := []pages.Kind{pages.KindInt, pages.KindFloat, pages.KindString}
	specs := []pages.ColCompression{{Enc: pages.EncRaw}, {Enc: pages.EncRaw}, {Enc: pages.EncRaw}}
	cols := make([]pages.ColData, len(kinds))
	const n = 512
	for i := 0; i < n; i++ {
		cols[0].I = append(cols[0].I, int64(i))
		cols[1].F = append(cols[1].F, float64(i)/3)
		cols[2].S = append(cols[2].S, "checksum-bench")
	}
	colBuf, err := pages.EncodeColPage(nil, n, kinds, specs, cols)
	if err != nil {
		b.Fatal(err)
	}
	for len(colBuf) < pages.PageSize {
		colBuf = append(colBuf, 0)
	}
	pages.SealColPage(colBuf)

	for _, tc := range []struct {
		name string
		buf  []byte
	}{
		{"slotted", slotted.Bytes()},
		{"columnar", colBuf},
	} {
		b.Run(tc.name, func(b *testing.B) {
			if err := pages.VerifyPage(tc.buf); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(pages.PageSize)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := pages.VerifyPage(tc.buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWireFrame measures encoding one complete result exchange —
// schema, a 256-row column-major batch, done — into a reused buffer.
// This is the server's per-frame hot path: it runs once per batch on
// every streamed result, so CI gates it at zero allocations.
func BenchmarkWireFrame(b *testing.B) {
	schema := pages.NewSchema(
		pages.Column{Name: "lo_orderkey", Kind: pages.KindInt},
		pages.Column{Name: "lo_revenue", Kind: pages.KindInt},
		pages.Column{Name: "c_nation", Kind: pages.KindString},
	)
	rows := make([]pages.Row, 256)
	for i := range rows {
		rows[i] = pages.Row{pages.Int(int64(i)), pages.Int(int64(i) * 37), pages.Str("INDONESIA")}
	}
	var buf []byte
	buf = wire.AppendSchema(buf[:0], schema)
	buf = wire.AppendBatch(buf, schema, rows)
	buf = wire.AppendDone(buf, uint64(len(rows)))
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = wire.AppendSchema(buf[:0], schema)
		buf = wire.AppendBatch(buf, schema, rows)
		buf = wire.AppendDone(buf, uint64(len(rows)))
	}
}

// BenchmarkServeThroughput measures one full network round trip on a
// persistent frame-protocol connection: query submission, admission,
// streamed execution and result decode — the serving stack end to end.
func BenchmarkServeThroughput(b *testing.B) {
	sys, err := sharedq.NewSystem(sharedq.SystemConfig{SF: 0.002, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	eng := sharedq.NewEngine(sys, sharedq.Options{Mode: sharedq.CJOINSP})
	defer eng.Close()
	srv := serve.New(serve.Config{Engine: eng, Addr: "127.0.0.1:0", HTTPAddr: "127.0.0.1:0"})
	if err := srv.Start(); err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	cl, err := serve.Dial(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	const q = `SELECT c_nation, SUM(lo_revenue) AS rev FROM lineorder, customer
		WHERE lo_custkey = c_custkey AND c_region = 'ASIA' GROUP BY c_nation`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := cl.Query("bench", q)
		if err != nil {
			b.Fatal(err)
		}
		for rs.Next() {
		}
		if rs.Err() != nil {
			b.Fatal(rs.Err())
		}
	}
}
